"""Simulated process address spaces with partitioning support.

Address-space partitioning (Figure 1 and Table 1 of the paper) builds two
variants whose valid addresses are disjoint: variant 0 only uses addresses
with the high bit clear, variant 1 only addresses with the high bit set
(``R_1(a) = a + 0x80000000``).  Any attack that injects a *concrete absolute
address* can therefore be valid in at most one variant; the other variant's
access raises a segmentation fault which the monitor reports.

This module models that property directly: an :class:`AddressSpace` owns a
set of mapped :class:`~repro.memory.memory_model.MemoryRegion` objects and a
partition constraint.  Every load/store validates that the address lies in
the variant's partition *and* inside a mapped region; otherwise it raises
:class:`~repro.kernel.errors.SegmentationFault`.
"""

from __future__ import annotations

from typing import Optional

from repro.kernel.errors import SegmentationFault
from repro.memory.memory_model import MemoryRegion

#: Size of the simulated address space (32-bit).
ADDRESS_BITS = 32
ADDRESS_MASK = (1 << ADDRESS_BITS) - 1

#: The bit used to partition address spaces between two variants.
PARTITION_BIT = 0x80000000


class AddressSpace:
    """A single variant's view of memory.

    Parameters
    ----------
    partition:
        ``None`` for an unpartitioned space (ordinary process), ``0`` for the
        low partition (addresses with the high bit clear) and ``1`` for the
        high partition (addresses with the high bit set).
    base_offset:
        Added to every region's nominal base when the space is created via
        :meth:`map_region`; this is how the extended partitioning variation
        (Bruschi et al.) adds an extra offset on top of the partition bit.
    """

    def __init__(self, partition: Optional[int] = None, base_offset: int = 0):
        if partition not in (None, 0, 1):
            raise ValueError(f"partition must be None, 0 or 1, got {partition!r}")
        self.partition = partition
        self.base_offset = base_offset
        self.regions: list[MemoryRegion] = []

    # -- address validity ----------------------------------------------------

    def partition_base(self) -> int:
        """The offset this space adds to nominal (variant-neutral) addresses."""
        if self.partition in (None, 0):
            return self.base_offset if self.partition == 1 else 0
        return PARTITION_BIT + self.base_offset

    def in_partition(self, address: int) -> bool:
        """True when *address* falls inside this space's partition."""
        address &= ADDRESS_MASK
        if self.partition is None:
            return True
        high_bit_set = bool(address & PARTITION_BIT)
        return high_bit_set == (self.partition == 1)

    def translate(self, nominal_address: int) -> int:
        """Map a variant-neutral *nominal* address into this space.

        This is the reexpression function ``R_i`` for addresses: identity for
        the low partition, ``+0x80000000 (+offset)`` for the high partition.
        """
        return (nominal_address + self.partition_base()) & ADDRESS_MASK

    def untranslate(self, address: int) -> int:
        """Inverse reexpression: map an address back to its nominal value."""
        return (address - self.partition_base()) & ADDRESS_MASK

    # -- region management -----------------------------------------------------

    def map_region(self, region: MemoryRegion) -> MemoryRegion:
        """Map *region* into this space, relocating it into the partition.

        The region's base address is interpreted as nominal and shifted by
        :meth:`partition_base`, so the same program maps "the stack at
        nominal 0x00100000" and ends up with disjoint concrete addresses in
        the two variants.
        """
        relocated = region.relocate(self.translate(region.base))
        for existing in self.regions:
            if relocated.overlaps(existing):
                raise ValueError(
                    f"region {relocated.name} overlaps existing region {existing.name}"
                )
        self.regions.append(relocated)
        return relocated

    def region_for(self, address: int) -> MemoryRegion:
        """Find the mapped region containing *address* or fault."""
        address &= ADDRESS_MASK
        if not self.in_partition(address):
            raise SegmentationFault(
                f"address 0x{address:08x} outside partition {self.partition}",
                address=address,
            )
        for region in self.regions:
            if region.contains(address):
                return region
        raise SegmentationFault(f"unmapped address 0x{address:08x}", address=address)

    def find_region(self, name: str) -> MemoryRegion:
        """Find a mapped region by name (raises ``KeyError`` if absent)."""
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(name)

    # -- access ------------------------------------------------------------------

    def load_bytes(self, address: int, count: int) -> bytes:
        """Read *count* bytes starting at *address* (may span one region only)."""
        region = self.region_for(address)
        return region.read(address, count)

    def store_bytes(self, address: int, data: bytes) -> None:
        """Write *data* starting at *address*."""
        region = self.region_for(address)
        region.write(address, data)

    def load_word(self, address: int) -> int:
        """Read a 32-bit little-endian word."""
        return int.from_bytes(self.load_bytes(address, 4), "little")

    def store_word(self, address: int, value: int) -> None:
        """Write a 32-bit little-endian word."""
        self.store_bytes(address, (value & ADDRESS_MASK).to_bytes(4, "little"))

    def dereference(self, pointer: int, count: int = 4) -> bytes:
        """Follow *pointer* and read *count* bytes -- the operation an
        absolute-address-injection attack ultimately needs to succeed."""
        return self.load_bytes(pointer, count)
