"""Simulated process address spaces with N-ary partitioning support.

Address-space partitioning (Figure 1 and Table 1 of the paper) builds
variants whose valid addresses are disjoint: under the paper's 2-variant
scheme, variant 0 only uses addresses with the high bit clear, variant 1
only addresses with the high bit set (``R_1(a) = a + 0x80000000``).  Any
attack that injects a *concrete absolute address* can therefore be valid in
at most one variant; every sibling variant's access raises a segmentation
fault which the monitor reports.

This module models that property directly, for any partition count: an
:class:`AddressSpace` owns a set of mapped
:class:`~repro.memory.memory_model.MemoryRegion` objects and (optionally)
one partition of a :class:`~repro.memory.partition.PartitionScheme`.  Every
load/store validates that the address lies in the space's partition *and*
inside a mapped region; otherwise it raises
:class:`~repro.kernel.errors.SegmentationFault`.  Which addresses belong to
the partition -- the high-bit half, one of N top-bits slices, a
Bruschi-style offset-extended slice -- is entirely the scheme's decision;
the address space itself no longer hardcodes any split.
"""

from __future__ import annotations

from typing import Optional

from repro.kernel.errors import SegmentationFault
from repro.memory.memory_model import MemoryRegion
from repro.memory.partition import PartitionScheme

#: Size of the simulated address space (32-bit).
ADDRESS_BITS = 32
ADDRESS_MASK = (1 << ADDRESS_BITS) - 1

#: The bit the paper's 2-variant scheme splits on (kept for formulas and
#: layout constants; the actual split now lives in the partition schemes).
PARTITION_BIT = 0x80000000


class AddressSpace:
    """A single variant's view of memory.

    Parameters
    ----------
    scheme:
        The :class:`~repro.memory.partition.PartitionScheme` that carves the
        address space, or ``None`` for an unpartitioned space (an ordinary
        process).  The scheme must carve regions (mask schemes such as the
        UID XOR family re-express values in place and cannot back an address
        space).
    index:
        Which of the scheme's partitions this space occupies.  Must be 0
        when the space is unpartitioned.
    """

    def __init__(self, scheme: Optional[PartitionScheme] = None, index: int = 0):
        if scheme is None:
            if index != 0:
                raise ValueError(
                    f"an unpartitioned address space has no partition index, got {index}"
                )
        else:
            if not scheme.carves_regions:
                raise ValueError(
                    f"{scheme.kind!r} schemes do not carve address regions and "
                    f"cannot back an address space"
                )
            scheme.check_index(index)
        self.scheme = scheme
        self.index = index
        self.regions: list[MemoryRegion] = []

    @property
    def partition(self) -> Optional[int]:
        """This space's partition index, or ``None`` when unpartitioned."""
        return None if self.scheme is None else self.index

    # -- address validity ----------------------------------------------------

    def partition_base(self) -> int:
        """The offset this space adds to nominal (variant-neutral) addresses."""
        if self.scheme is None:
            return 0
        return self.scheme.base_of(self.index)

    def in_partition(self, address: int) -> bool:
        """True when *address* falls inside this space's partition."""
        if self.scheme is None:
            return True
        return self.scheme.partition_of(address & ADDRESS_MASK) == self.index

    def translate(self, nominal_address: int) -> int:
        """Map a variant-neutral *nominal* address into this space.

        This is the reexpression function ``R_i`` for addresses: identity for
        partition 0, ``+base_of(i)`` for every other partition.
        """
        return (nominal_address + self.partition_base()) & ADDRESS_MASK

    def untranslate(self, address: int) -> int:
        """Inverse reexpression: map an address back to its nominal value."""
        return (address - self.partition_base()) & ADDRESS_MASK

    # -- region management -----------------------------------------------------

    def map_region(self, region: MemoryRegion) -> MemoryRegion:
        """Map *region* into this space, relocating it into the partition.

        The region's base address is interpreted as nominal and shifted by
        :meth:`partition_base`, so the same program maps "the stack at
        nominal 0x00100000" and ends up with pairwise-disjoint concrete
        addresses across the variants.

        The nominal region must fit inside the scheme's per-partition
        capacity: a layout that was legal under a wide scheme (N=2 leaves
        2^31 nominal addresses) can overhang a narrower partition at
        higher N, and the overhanging addresses would land in a sibling's
        partition -- every access there would fault, turning a layout
        mistake into benign-workload false alarms.  Rejecting it at map
        time keeps the error at its cause.
        """
        if self.scheme is not None:
            capacity = self.scheme.nominal_capacity
            if region.base + region.size > capacity:
                raise ValueError(
                    f"region {region.name} (nominal 0x{region.base:08x}+0x{region.size:x}) "
                    f"exceeds the {self.scheme.kind} scheme's per-partition capacity "
                    f"of 0x{capacity:08x} nominal addresses"
                )
        relocated = region.relocate(self.translate(region.base))
        for existing in self.regions:
            if relocated.overlaps(existing):
                raise ValueError(
                    f"region {relocated.name} overlaps existing region {existing.name}"
                )
        self.regions.append(relocated)
        return relocated

    def region_for(self, address: int) -> MemoryRegion:
        """Find the mapped region containing *address* or fault."""
        address &= ADDRESS_MASK
        if not self.in_partition(address):
            raise SegmentationFault(
                f"address 0x{address:08x} outside partition {self.partition}",
                address=address,
            )
        for region in self.regions:
            if region.contains(address):
                return region
        raise SegmentationFault(f"unmapped address 0x{address:08x}", address=address)

    def find_region(self, name: str) -> MemoryRegion:
        """Find a mapped region by name (raises ``KeyError`` if absent)."""
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(name)

    # -- access ------------------------------------------------------------------

    def load_bytes(self, address: int, count: int) -> bytes:
        """Read *count* bytes starting at *address* (may span one region only)."""
        region = self.region_for(address)
        return region.read(address, count)

    def store_bytes(self, address: int, data: bytes) -> None:
        """Write *data* starting at *address*."""
        region = self.region_for(address)
        region.write(address, data)

    def load_word(self, address: int) -> int:
        """Read a 32-bit little-endian word."""
        return int.from_bytes(self.load_bytes(address, 4), "little")

    def store_word(self, address: int, value: int) -> None:
        """Write a 32-bit little-endian word."""
        self.store_bytes(address, (value & ADDRESS_MASK).to_bytes(4, "little"))

    def dereference(self, pointer: int, count: int = 4) -> bytes:
        """Follow *pointer* and read *count* bytes -- the operation an
        absolute-address-injection attack ultimately needs to succeed."""
        return self.load_bytes(pointer, count)
