"""N-ary partition schemes: the one re-expression-family abstraction.

The paper's two data-diversity families are instances of a single idea:
pick, for each of N variants, a re-expression of a value space such that a
concrete value an attacker injects identically into every variant cannot be
*valid* (or cannot *decode identically*) in all of them.

* **Address-space partitioning** carves the 32-bit address space into N
  disjoint regions; variant *i* only maps addresses inside region *i*, so an
  injected absolute pointer lies in at most one variant's region and every
  sibling segfaults on the dereference.
* **UID re-expression** gives variant *i* its own XOR mask; the same concrete
  ``uid_t`` decodes to N pairwise-different semantic users, so the monitor
  sees a divergence at first use.

A :class:`PartitionScheme` captures what both families share: a partition
count, per-variant ``translate``/``untranslate`` maps (the re-expression
``R_i`` and its inverse), and the two invariants the security argument
needs -- every ``translate``/``untranslate`` pair round-trips (normal
equivalence) and the inverses are pairwise disjoint (detection).  Schemes
that carve the value space into *regions* additionally expose ``base_of``
and ``partition_of`` with the placement invariant
``partition_of(translate(i, a)) == i`` for every in-capacity nominal ``a``.

Concrete schemes:

* :class:`HighBitScheme` -- the paper's N=2 high-bit split
  (``R_1(a) = a + 0x80000000``, Cox et al. 2006).
* :class:`OrbitScheme` -- the N-ary generalisation: the top
  ``ceil(log2 N)`` bits select the partition, so any N >= 2 variants get
  pairwise-disjoint address regions.
* :class:`ExtendedOrbitScheme` -- Bruschi et al.'s offset-extended
  partitioning, N-ary: partition *i* is additionally slid by ``i * offset``
  so even the low bytes of corresponding addresses differ, restoring
  probabilistic protection against partial pointer overwrites.
* :class:`XorMaskScheme` -- the UID re-expression family: per-variant XOR
  masks (pairwise distinct, sign bit clear).  It does not carve regions --
  every concrete value is representable in every variant -- but satisfies
  the same round-trip and disjoint-inverse invariants through the same
  protocol, which is what lets :class:`~repro.core.variations.uid.\
OrbitUIDVariation` and the address variations share one API.

The module-level :data:`SCHEMES` registry maps stable kind names to
factories (``create_scheme("orbit", 5)``); new schemes register once and
become constructible wherever a scheme is accepted.

This module deliberately imports nothing from :mod:`repro.core` at module
level (``repro.core.variations`` imports :mod:`repro.memory`);
:class:`~repro.core.reexpression.ReexpressionFunction` objects are built
lazily inside :meth:`PartitionScheme.reexpression`.
"""

from __future__ import annotations

from typing import Callable, Optional

#: Width of the partitioned value spaces (32-bit addresses and uid_t).
VALUE_BITS = 32
VALUE_MASK = (1 << VALUE_BITS) - 1

#: The paper's mask: flips the 31 low bits, leaves the sign bit alone.
UID_MASK_31 = 0x7FFFFFFF


class PartitionSchemeError(ValueError):
    """A scheme was constructed or used inconsistently."""


class PartitionScheme:
    """One N-ary re-expression family over a fixed-width value space.

    Subclasses define :meth:`base_of` (region-carving schemes) or override
    :meth:`translate`/:meth:`untranslate` directly (mask schemes).  The two
    family-wide invariants -- checked by the property-test suite for every
    registered scheme -- are:

    * **round-trip**: ``untranslate(i, translate(i, x)) == x`` for all x;
    * **disjoint inverses**: ``untranslate(i, v)`` are pairwise different
      for every concrete v, so an injected value decodes differently in at
      least two variants.

    Region-carving schemes (:attr:`carves_regions` true) additionally
    guarantee **placement**: ``partition_of(translate(i, a)) == i`` for
    every nominal ``a < nominal_capacity``.
    """

    #: Stable kind name (the :data:`SCHEMES` registry key).
    kind: str = "scheme"

    #: True when the scheme assigns each concrete value to at most one
    #: partition (address-style); False for mask schemes where every value
    #: is representable in every variant (UID-style).
    carves_regions: bool = True

    def __init__(self, num_partitions: int):
        if num_partitions < 2:
            raise PartitionSchemeError(
                f"a partition scheme needs at least two partitions, got {num_partitions}"
            )
        self.num_partitions = num_partitions

    # -- the protocol ----------------------------------------------------------

    def base_of(self, index: int) -> int:
        """The offset partition *index* adds to nominal values (region schemes)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not place partitions at base offsets"
        )

    def partition_of(self, value: int) -> Optional[int]:
        """The unique partition containing concrete *value*, or ``None``.

        ``None`` means no partition claims the value: for region schemes a
        gap every variant faults on, for mask schemes (which do not carve
        the space) always.
        """
        return None

    def translate(self, index: int, value: int) -> int:
        """Re-express nominal *value* into partition *index* (``R_index``)."""
        self.check_index(index)
        return (value + self.base_of(index)) & VALUE_MASK

    def untranslate(self, index: int, value: int) -> int:
        """Invert :meth:`translate`: concrete *value* back to nominal form."""
        self.check_index(index)
        return (value - self.base_of(index)) & VALUE_MASK

    @property
    def nominal_capacity(self) -> int:
        """How many nominal values are guaranteed to place correctly.

        Every nominal value in ``[0, nominal_capacity)`` satisfies the
        placement invariant in every partition; mask schemes re-express the
        whole space.
        """
        return 1 << VALUE_BITS

    # -- derived helpers -------------------------------------------------------

    def reexpression(self, index: int, domain: str = "address"):
        """Partition *index*'s re-expression as a
        :class:`~repro.core.reexpression.ReexpressionFunction`."""
        # Imported lazily: repro.core.variations imports repro.memory, so a
        # module-level import here would be circular.
        from repro.core.reexpression import identity_reexpression, offset_reexpression

        self.check_index(index)
        base = self.base_of(index)
        if base == 0:
            return identity_reexpression(domain)
        return offset_reexpression(base, domain=domain)

    def reexpressions(self, domain: str = "address") -> list:
        """All partitions' re-expression functions, in partition order."""
        return [self.reexpression(index, domain) for index in range(self.num_partitions)]

    def decodes_of(self, value: int) -> list[int]:
        """Concrete *value* decoded by every partition's inverse, in order."""
        return [self.untranslate(index, value) for index in range(self.num_partitions)]

    def disjoint_at(self, value: int) -> bool:
        """True when the disjoint-inverses invariant holds at *value*."""
        decoded = self.decodes_of(value)
        return len(set(decoded)) == len(decoded)

    def check_index(self, index: int) -> None:
        """Validate a partition index (raises :class:`PartitionSchemeError`)."""
        if not 0 <= index < self.num_partitions:
            raise PartitionSchemeError(
                f"partition index {index} out of range for {self.kind} scheme "
                f"({self.num_partitions} partitions)"
            )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return f"{self.kind} scheme, {self.num_partitions} partitions"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} kind={self.kind!r} N={self.num_partitions}>"


def _partition_bits(num_partitions: int) -> int:
    """The top bits needed to address *num_partitions* disjoint slices."""
    return max(1, (num_partitions - 1).bit_length())


class OrbitScheme(PartitionScheme):
    """Top-``ceil(log2 N)``-bits partitioning, the N-ary address scheme.

    Partition *i* occupies the slice whose top bits encode *i*; concrete
    values whose top bits encode an index >= N belong to no partition (every
    variant faults there, which only strengthens detection).  For N=2 this
    is numerically the paper's high-bit split.
    """

    kind = "orbit"

    def __init__(self, num_partitions: int):
        super().__init__(num_partitions)
        self.partition_bits = _partition_bits(num_partitions)
        self.shift = VALUE_BITS - self.partition_bits

    def base_of(self, index: int) -> int:
        self.check_index(index)
        return index << self.shift

    def partition_of(self, value: int) -> Optional[int]:
        index = (value & VALUE_MASK) >> self.shift
        return index if index < self.num_partitions else None

    @property
    def nominal_capacity(self) -> int:
        return 1 << self.shift

    def describe(self) -> str:
        return (
            f"{self.kind} scheme: top {self.partition_bits} bit(s) select one of "
            f"{self.num_partitions} partitions of 2^{self.shift} addresses"
        )


class HighBitScheme(OrbitScheme):
    """The paper's scheme: two partitions split on the address high bit.

    ``R_0(a) = a``; ``R_1(a) = a + 0x80000000`` (Cox et al., USENIX Security
    2006).  Kept as its own kind so the paper-exact configuration stays
    nameable even though it coincides with ``OrbitScheme(2)`` numerically.
    """

    kind = "high-bit"

    def __init__(self, num_partitions: int = 2):
        if num_partitions != 2:
            raise PartitionSchemeError(
                f"the high-bit scheme is defined for exactly two partitions, "
                f"got {num_partitions}"
            )
        super().__init__(num_partitions)


class ExtendedOrbitScheme(OrbitScheme):
    """Orbit partitioning plus a per-partition slide (Bruschi et al. 2007).

    Partition *i* starts at ``(i << shift) + i * offset``, so corresponding
    addresses differ across variants even in their low bytes and a partial
    (low-byte) pointer overwrite is detected with high probability.  The
    N=2 instance reproduces ``ExtendedAddressPartitioning``'s historical
    layout: variant 1 at ``0x80000000 + offset``.
    """

    kind = "extended-orbit"

    def __init__(self, num_partitions: int = 2, offset: int = 0x00010000):
        super().__init__(num_partitions)
        slice_size = 1 << self.shift
        if offset <= 0 or (num_partitions - 1) * offset >= slice_size:
            raise PartitionSchemeError(
                f"offset must be positive and small enough that every slide "
                f"stays inside its 2^{self.shift}-address slice, got 0x{offset:x}"
            )
        self.offset = offset

    def base_of(self, index: int) -> int:
        self.check_index(index)
        return (index << self.shift) + index * self.offset

    @property
    def nominal_capacity(self) -> int:
        return (1 << self.shift) - (self.num_partitions - 1) * self.offset

    def describe(self) -> str:
        return (
            f"{self.kind} scheme: {self.num_partitions} top-bit partitions, "
            f"each slid by a further 0x{self.offset:x} per index"
        )


# ---------------------------------------------------------------------------
# The UID family: XOR-mask re-expression through the same protocol
# ---------------------------------------------------------------------------

#: Hand-picked 31-bit masks for the first orbit variants: identity, the
#: paper's mask, then alternating/stripe patterns that stay pairwise distinct.
_ORBIT_MASK_TABLE = (
    0x00000000,
    UID_MASK_31,
    0x55555555,
    0x2AAAAAAA,
    0x33333333,
    0x4CCCCCCC,
    0x0F0F0F0F,
    0x70F0F0F0,
)


def default_uid_masks(num_variants: int) -> tuple[int, ...]:
    """Pairwise-distinct 31-bit XOR masks, one per variant (``mask_0 = 0``).

    The detection argument of Section 3 only needs the masks to differ
    pairwise: an attacker-injected concrete value ``v`` decodes to
    ``v XOR mask_i`` in variant *i*, so distinct masks guarantee at least two
    variants disagree about any injected value.  Masks never set bit 31, so
    every variant's representation of a valid UID stays a value the kernel
    accepts (the Section 3.2 constraint).  The first eight masks come from a
    fixed table; beyond that a deterministic multiplicative walk extends the
    orbit, so the same ``num_variants`` always yields the same masks.
    """
    if num_variants < 2:
        raise ValueError(f"an orbit needs at least two variants, got {num_variants}")
    masks = list(_ORBIT_MASK_TABLE[:num_variants])
    seen = set(masks)
    candidate = 0x6A09E667  # frac(sqrt(2)) -- an arbitrary fixed seed
    while len(masks) < num_variants:
        candidate = (candidate * 0x9E3779B1 + 0x7F4A7C15) & UID_MASK_31
        if candidate and candidate not in seen:
            masks.append(candidate)
            seen.add(candidate)
    return tuple(masks)


class XorMaskScheme(PartitionScheme):
    """Per-partition XOR masks: the UID re-expression family as a scheme.

    XOR with a constant is self-inverse, so ``translate`` and
    ``untranslate`` coincide; the disjoint-inverses invariant reduces to the
    masks being pairwise distinct, which the constructor enforces.  The
    scheme does not carve the value space -- every concrete value is a legal
    representation in every variant, and detection rests entirely on decode
    divergence -- so :meth:`partition_of` is always ``None`` and
    :meth:`base_of` is unavailable.
    """

    kind = "uid-xor"
    carves_regions = False

    def __init__(self, masks: tuple[int, ...]):
        masks = tuple(int(mask) & VALUE_MASK for mask in masks)
        super().__init__(len(masks))
        if len(set(masks)) != len(masks):
            raise PartitionSchemeError(f"XOR masks must be pairwise distinct, got {masks}")
        # The Section 3.2 constraint: a mask touching the sign bit re-expresses
        # valid UIDs into values the kernel refuses (the rejected full-flip
        # design), so the scheme family excludes it by construction.
        signed = [mask for mask in masks if mask & ~UID_MASK_31]
        if signed:
            raise PartitionSchemeError(
                f"XOR masks must leave the sign bit clear (Section 3.2), got "
                f"{', '.join(f'0x{mask:08X}' for mask in signed)}"
            )
        self.masks = masks

    @classmethod
    def for_uids(cls, num_partitions: int) -> "XorMaskScheme":
        """The standard UID orbit: :func:`default_uid_masks` masks."""
        return cls(default_uid_masks(num_partitions))

    def mask_of(self, index: int) -> int:
        """Partition *index*'s XOR mask."""
        self.check_index(index)
        return self.masks[index]

    def translate(self, index: int, value: int) -> int:
        return (value ^ self.mask_of(index)) & VALUE_MASK

    def untranslate(self, index: int, value: int) -> int:
        # XOR with a constant is self-inverse; delegating (rather than
        # aliasing the method at class level) keeps that true for any
        # subclass that overrides translate.
        return self.translate(index, value)

    def reexpression(self, index: int, domain: str = "uid"):
        from repro.core.reexpression import identity_reexpression, xor_reexpression

        mask = self.mask_of(index)
        if mask == 0:
            return identity_reexpression(domain)
        return xor_reexpression(mask, domain)

    def describe(self) -> str:
        return (
            f"{self.kind} scheme: {self.num_partitions} pairwise-distinct XOR masks "
            f"({', '.join(f'0x{mask:08X}' for mask in self.masks)})"
        )


# ---------------------------------------------------------------------------
# The scheme registry
# ---------------------------------------------------------------------------

SchemeFactory = Callable[..., PartitionScheme]

#: Stable kind name -> factory.  Factories take ``num_partitions`` first and
#: any scheme-specific keyword parameters after it.
SCHEMES: dict[str, SchemeFactory] = {
    HighBitScheme.kind: HighBitScheme,
    OrbitScheme.kind: OrbitScheme,
    ExtendedOrbitScheme.kind: ExtendedOrbitScheme,
    XorMaskScheme.kind: XorMaskScheme.for_uids,
}


def register_scheme(kind: str, factory: SchemeFactory) -> None:
    """Register *factory* under *kind* (re-registering replaces the entry)."""
    SCHEMES[kind] = factory


def scheme_kinds() -> list[str]:
    """The registered scheme kinds, sorted."""
    return sorted(SCHEMES)


def create_scheme(kind: str, num_partitions: int, **params) -> PartitionScheme:
    """Build a scheme from its registered kind name."""
    try:
        factory = SCHEMES[kind]
    except KeyError:
        raise PartitionSchemeError(
            f"unknown partition scheme {kind!r}; registered schemes: "
            f"{', '.join(scheme_kinds())}"
        ) from None
    return factory(num_partitions, **params)
