"""N-ary partition schemes: the one re-expression-family abstraction.

The paper's two data-diversity families are instances of a single idea:
pick, for each of N variants, a re-expression of a value space such that a
concrete value an attacker injects identically into every variant cannot be
*valid* (or cannot *decode identically*) in all of them.

* **Address-space partitioning** carves the 32-bit address space into N
  disjoint regions; variant *i* only maps addresses inside region *i*, so an
  injected absolute pointer lies in at most one variant's region and every
  sibling segfaults on the dereference.
* **UID re-expression** gives variant *i* its own XOR mask; the same concrete
  ``uid_t`` decodes to N pairwise-different semantic users, so the monitor
  sees a divergence at first use.

A :class:`PartitionScheme` captures what both families share: a partition
count, per-variant ``translate``/``untranslate`` maps (the re-expression
``R_i`` and its inverse), and the two invariants the security argument
needs -- every ``translate``/``untranslate`` pair round-trips (normal
equivalence) and the inverses are pairwise disjoint (detection).  Schemes
that carve the value space into *regions* additionally expose ``base_of``
and ``partition_of`` with the placement invariant
``partition_of(translate(i, a)) == i`` for every in-capacity nominal ``a``.

Concrete schemes:

* :class:`HighBitScheme` -- the paper's N=2 high-bit split
  (``R_1(a) = a + 0x80000000``, Cox et al. 2006).
* :class:`OrbitScheme` -- the N-ary generalisation: the top
  ``ceil(log2 N)`` bits select the partition, so any N >= 2 variants get
  pairwise-disjoint address regions.
* :class:`ExtendedOrbitScheme` -- Bruschi et al.'s offset-extended
  partitioning, N-ary: partition *i* is additionally slid by ``i * offset``
  so even the low bytes of corresponding addresses differ, restoring
  probabilistic protection against partial pointer overwrites.
* :class:`XorMaskScheme` -- the UID re-expression family: per-variant XOR
  masks (pairwise distinct, sign bit clear).  It does not carve regions --
  every concrete value is representable in every variant -- but satisfies
  the same round-trip and disjoint-inverse invariants through the same
  protocol, which is what lets :class:`~repro.core.variations.uid.\
OrbitUIDVariation` and the address variations share one API.

Every fixed scheme above is *public*: an attacker who reads the source knows
every mask and base, so detection is a boolean property of the scheme.  The
keyed variants turn it probabilistic: :class:`KeyedXorMaskScheme`,
:class:`KeyedOrbitScheme` and :class:`KeyedAddressScheme` draw their masks,
slice assignments and slide offsets from an injected :class:`random.Random`
keyed by a ``key_bits`` parameter, so an attacker must *search* a
``2**key_bits`` space and every probe risks an alarm (see
:mod:`repro.security`).  A keyed scheme satisfies the exact same round-trip,
disjoint-inverse and placement invariants for any drawn key -- the property
suite sweeps them like every other registered kind.

The module-level :data:`SCHEMES` registry maps stable kind names to
factories (``create_scheme("orbit", 5)``); new schemes register once and
become constructible wherever a scheme is accepted.

This module deliberately imports nothing from :mod:`repro.core` at module
level (``repro.core.variations`` imports :mod:`repro.memory`);
:class:`~repro.core.reexpression.ReexpressionFunction` objects are built
lazily inside :meth:`PartitionScheme.reexpression`.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Optional, Sequence

#: Width of the partitioned value spaces (32-bit addresses and uid_t).
VALUE_BITS = 32
VALUE_MASK = (1 << VALUE_BITS) - 1

#: The paper's mask: flips the 31 low bits, leaves the sign bit alone.
UID_MASK_31 = 0x7FFFFFFF


class PartitionSchemeError(ValueError):
    """A scheme was constructed or used inconsistently."""


class PartitionScheme:
    """One N-ary re-expression family over a fixed-width value space.

    Subclasses define :meth:`base_of` (region-carving schemes) or override
    :meth:`translate`/:meth:`untranslate` directly (mask schemes).  The two
    family-wide invariants -- checked by the property-test suite for every
    registered scheme -- are:

    * **round-trip**: ``untranslate(i, translate(i, x)) == x`` for all x;
    * **disjoint inverses**: ``untranslate(i, v)`` are pairwise different
      for every concrete v, so an injected value decodes differently in at
      least two variants.

    Region-carving schemes (:attr:`carves_regions` true) additionally
    guarantee **placement**: ``partition_of(translate(i, a)) == i`` for
    every nominal ``a < nominal_capacity``.
    """

    #: Stable kind name (the :data:`SCHEMES` registry key).
    kind: str = "scheme"

    #: True when the scheme assigns each concrete value to at most one
    #: partition (address-style); False for mask schemes where every value
    #: is representable in every variant (UID-style).
    carves_regions: bool = True

    def __init__(self, num_partitions: int):
        if num_partitions < 2:
            raise PartitionSchemeError(
                f"a partition scheme needs at least two partitions, got {num_partitions}"
            )
        self.num_partitions = num_partitions

    # -- the protocol ----------------------------------------------------------

    def base_of(self, index: int) -> int:
        """The offset partition *index* adds to nominal values (region schemes)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not place partitions at base offsets"
        )

    def partition_of(self, value: int) -> Optional[int]:
        """The unique partition containing concrete *value*, or ``None``.

        ``None`` means no partition claims the value: for region schemes a
        gap every variant faults on, for mask schemes (which do not carve
        the space) always.
        """
        return None

    def translate(self, index: int, value: int) -> int:
        """Re-express nominal *value* into partition *index* (``R_index``)."""
        self.check_index(index)
        return (value + self.base_of(index)) & VALUE_MASK

    def untranslate(self, index: int, value: int) -> int:
        """Invert :meth:`translate`: concrete *value* back to nominal form."""
        self.check_index(index)
        return (value - self.base_of(index)) & VALUE_MASK

    @property
    def nominal_capacity(self) -> int:
        """How many nominal values are guaranteed to place correctly.

        Every nominal value in ``[0, nominal_capacity)`` satisfies the
        placement invariant in every partition; mask schemes re-express the
        whole space.
        """
        return 1 << VALUE_BITS

    # -- derived helpers -------------------------------------------------------

    def reexpression(self, index: int, domain: str = "address"):
        """Partition *index*'s re-expression as a
        :class:`~repro.core.reexpression.ReexpressionFunction`."""
        # Imported lazily: repro.core.variations imports repro.memory, so a
        # module-level import here would be circular.
        from repro.core.reexpression import identity_reexpression, offset_reexpression

        self.check_index(index)
        base = self.base_of(index)
        if base == 0:
            return identity_reexpression(domain)
        return offset_reexpression(base, domain=domain)

    def reexpressions(self, domain: str = "address") -> list:
        """All partitions' re-expression functions, in partition order."""
        return [self.reexpression(index, domain) for index in range(self.num_partitions)]

    def decodes_of(self, value: int) -> list[int]:
        """Concrete *value* decoded by every partition's inverse, in order."""
        return [self.untranslate(index, value) for index in range(self.num_partitions)]

    def disjoint_at(self, value: int) -> bool:
        """True when the disjoint-inverses invariant holds at *value*."""
        decoded = self.decodes_of(value)
        return len(set(decoded)) == len(decoded)

    def check_index(self, index: int) -> None:
        """Validate a partition index (raises :class:`PartitionSchemeError`)."""
        if not 0 <= index < self.num_partitions:
            raise PartitionSchemeError(
                f"partition index {index} out of range for {self.kind} scheme "
                f"({self.num_partitions} partitions)"
            )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return f"{self.kind} scheme, {self.num_partitions} partitions"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} kind={self.kind!r} N={self.num_partitions}>"


def _partition_bits(num_partitions: int) -> int:
    """The top bits needed to address *num_partitions* disjoint slices."""
    return max(1, (num_partitions - 1).bit_length())


class OrbitScheme(PartitionScheme):
    """Top-``ceil(log2 N)``-bits partitioning, the N-ary address scheme.

    Partition *i* occupies the slice whose top bits encode *i*; concrete
    values whose top bits encode an index >= N belong to no partition (every
    variant faults there, which only strengthens detection).  For N=2 this
    is numerically the paper's high-bit split.
    """

    kind = "orbit"

    def __init__(self, num_partitions: int):
        super().__init__(num_partitions)
        self.partition_bits = _partition_bits(num_partitions)
        self.shift = VALUE_BITS - self.partition_bits

    def base_of(self, index: int) -> int:
        self.check_index(index)
        return index << self.shift

    def partition_of(self, value: int) -> Optional[int]:
        index = (value & VALUE_MASK) >> self.shift
        return index if index < self.num_partitions else None

    @property
    def nominal_capacity(self) -> int:
        return 1 << self.shift

    def describe(self) -> str:
        return (
            f"{self.kind} scheme: top {self.partition_bits} bit(s) select one of "
            f"{self.num_partitions} partitions of 2^{self.shift} addresses"
        )


class FdOrbitScheme(OrbitScheme):
    """Orbit partitioning over the file-descriptor value space.

    Numerically identical to :class:`OrbitScheme` -- descriptors are small
    non-negative integers, so the top-bits carve leaves every real
    descriptor in partition 0's nominal range for any practical N -- but
    registered as its own kind so fd diversity is nameable in scenarios and
    swept by the invariant suite like every other family.  Variant *i*'s
    user space holds descriptor ``fd + (i << shift)``; the fd variation
    decodes arguments ahead of the kernel and re-expresses descriptor
    results, so an fd value injected identically into every variant decodes
    to N pairwise-different descriptors and diverges at first use.
    """

    kind = "fd-orbit"

    def reexpression(self, index: int, domain: str = "fd"):
        return super().reexpression(index, domain)


class HighBitScheme(OrbitScheme):
    """The paper's scheme: two partitions split on the address high bit.

    ``R_0(a) = a``; ``R_1(a) = a + 0x80000000`` (Cox et al., USENIX Security
    2006).  Kept as its own kind so the paper-exact configuration stays
    nameable even though it coincides with ``OrbitScheme(2)`` numerically.
    """

    kind = "high-bit"

    def __init__(self, num_partitions: int = 2):
        if num_partitions != 2:
            raise PartitionSchemeError(
                f"the high-bit scheme is defined for exactly two partitions, "
                f"got {num_partitions}"
            )
        super().__init__(num_partitions)


class ExtendedOrbitScheme(OrbitScheme):
    """Orbit partitioning plus a per-partition slide (Bruschi et al. 2007).

    Partition *i* starts at ``(i << shift) + i * offset``, so corresponding
    addresses differ across variants even in their low bytes and a partial
    (low-byte) pointer overwrite is detected with high probability.  The
    N=2 instance reproduces ``ExtendedAddressPartitioning``'s historical
    layout: variant 1 at ``0x80000000 + offset``.
    """

    kind = "extended-orbit"

    def __init__(self, num_partitions: int = 2, offset: int = 0x00010000):
        super().__init__(num_partitions)
        slice_size = 1 << self.shift
        if offset <= 0 or (num_partitions - 1) * offset >= slice_size:
            raise PartitionSchemeError(
                f"offset must be positive and small enough that every slide "
                f"stays inside its 2^{self.shift}-address slice, got 0x{offset:x}"
            )
        self.offset = offset

    def base_of(self, index: int) -> int:
        self.check_index(index)
        return (index << self.shift) + index * self.offset

    @property
    def nominal_capacity(self) -> int:
        return (1 << self.shift) - (self.num_partitions - 1) * self.offset

    def describe(self) -> str:
        return (
            f"{self.kind} scheme: {self.num_partitions} top-bit partitions, "
            f"each slid by a further 0x{self.offset:x} per index"
        )


# ---------------------------------------------------------------------------
# The UID family: XOR-mask re-expression through the same protocol
# ---------------------------------------------------------------------------

#: Hand-picked 31-bit masks for the first orbit variants: identity, the
#: paper's mask, then alternating/stripe patterns that stay pairwise distinct.
_ORBIT_MASK_TABLE = (
    0x00000000,
    UID_MASK_31,
    0x55555555,
    0x2AAAAAAA,
    0x33333333,
    0x4CCCCCCC,
    0x0F0F0F0F,
    0x70F0F0F0,
)


def default_uid_masks(num_variants: int) -> tuple[int, ...]:
    """Pairwise-distinct 31-bit XOR masks, one per variant (``mask_0 = 0``).

    The detection argument of Section 3 only needs the masks to differ
    pairwise: an attacker-injected concrete value ``v`` decodes to
    ``v XOR mask_i`` in variant *i*, so distinct masks guarantee at least two
    variants disagree about any injected value.  Masks never set bit 31, so
    every variant's representation of a valid UID stays a value the kernel
    accepts (the Section 3.2 constraint).  The first eight masks come from a
    fixed table; beyond that a deterministic multiplicative walk extends the
    orbit, so the same ``num_variants`` always yields the same masks.
    """
    if num_variants < 2:
        raise ValueError(f"an orbit needs at least two variants, got {num_variants}")
    masks = list(_ORBIT_MASK_TABLE[:num_variants])
    seen = set(masks)
    candidate = 0x6A09E667  # frac(sqrt(2)) -- an arbitrary fixed seed
    while len(masks) < num_variants:
        candidate = (candidate * 0x9E3779B1 + 0x7F4A7C15) & UID_MASK_31
        if candidate and candidate not in seen:
            masks.append(candidate)
            seen.add(candidate)
    return tuple(masks)


class XorMaskScheme(PartitionScheme):
    """Per-partition XOR masks: the UID re-expression family as a scheme.

    XOR with a constant is self-inverse, so ``translate`` and
    ``untranslate`` coincide; the disjoint-inverses invariant reduces to the
    masks being pairwise distinct, which the constructor enforces.  The
    scheme does not carve the value space -- every concrete value is a legal
    representation in every variant, and detection rests entirely on decode
    divergence -- so :meth:`partition_of` is always ``None`` and
    :meth:`base_of` is unavailable.
    """

    kind = "uid-xor"
    carves_regions = False

    def __init__(self, masks: tuple[int, ...]):
        masks = tuple(int(mask) & VALUE_MASK for mask in masks)
        super().__init__(len(masks))
        if len(set(masks)) != len(masks):
            raise PartitionSchemeError(f"XOR masks must be pairwise distinct, got {masks}")
        # The Section 3.2 constraint: a mask touching the sign bit re-expresses
        # valid UIDs into values the kernel refuses (the rejected full-flip
        # design), so the scheme family excludes it by construction.
        signed = [mask for mask in masks if mask & ~UID_MASK_31]
        if signed:
            raise PartitionSchemeError(
                f"XOR masks must leave the sign bit clear (Section 3.2), got "
                f"{', '.join(f'0x{mask:08X}' for mask in signed)}"
            )
        self.masks = masks

    @classmethod
    def for_uids(cls, num_partitions: int) -> "XorMaskScheme":
        """The standard UID orbit: :func:`default_uid_masks` masks."""
        return cls(default_uid_masks(num_partitions))

    def mask_of(self, index: int) -> int:
        """Partition *index*'s XOR mask."""
        self.check_index(index)
        return self.masks[index]

    def translate(self, index: int, value: int) -> int:
        return (value ^ self.mask_of(index)) & VALUE_MASK

    def untranslate(self, index: int, value: int) -> int:
        # XOR with a constant is self-inverse; delegating (rather than
        # aliasing the method at class level) keeps that true for any
        # subclass that overrides translate.
        return self.translate(index, value)

    def reexpression(self, index: int, domain: str = "uid"):
        from repro.core.reexpression import identity_reexpression, xor_reexpression

        mask = self.mask_of(index)
        if mask == 0:
            return identity_reexpression(domain)
        return xor_reexpression(mask, domain)

    def describe(self) -> str:
        return (
            f"{self.kind} scheme: {self.num_partitions} pairwise-distinct XOR masks "
            f"({', '.join(f'0x{mask:08X}' for mask in self.masks)})"
        )


# ---------------------------------------------------------------------------
# Keyed schemes: secret layouts drawn from an injected random.Random
# ---------------------------------------------------------------------------


def _keyed_rng(seed: Optional[int], rng: Optional[random.Random]) -> random.Random:
    """The key source: an injected generator, a seeded one, or a fresh one.

    Module-global :mod:`random` state is never touched -- reproducibility
    flows entirely through the ``seed``/``rng`` parameters (the ``--seed``
    plumbing hands every keyed scheme its own derived generator).
    """
    if rng is not None:
        return rng
    return random.Random(seed)


class KeyedScheme:
    """Mixin protocol shared by the keyed scheme kinds.

    A keyed scheme holds its key source and redraws its secrets on
    :meth:`rotate` -- the engine rotates keys when a session restarts, and
    an unseeded scheme draws a fresh, unpredictable key per construction.
    ``key_bits`` names the entropy of the secret an attacker must search:
    the drawn layout is one point in a ``2**key_bits``-sized space.
    """

    #: Every keyed kind reports True so callers can detect rotatable schemes
    #: without enumerating kinds.
    keyed: bool = True

    def rotate(self) -> None:
        """Redraw the scheme's secrets from its key source, in place."""
        raise NotImplementedError

    def secret(self) -> tuple[int, ...]:
        """The current secret, as a tuple (for tests and attacker oracles)."""
        raise NotImplementedError

    def install_secret(self, values: "Sequence[int]") -> None:
        """Adopt a previously drawn secret verbatim (checkpoint restore).

        The inverse of :meth:`secret`: a restored session must continue under
        the *same* key layout the checkpointed session was running, not a
        fresh draw, or every in-flight concrete representation would decode
        differently after migration.  Implementations validate the values
        against the scheme's invariants (distinctness, range) and raise
        :class:`PartitionSchemeError` on a corrupt or mismatched secret.
        """
        raise NotImplementedError


class KeyedOrbitScheme(KeyedScheme, PartitionScheme):
    """Orbit partitioning with *secret* slice assignments.

    The top ``key_bits`` bits address ``2**key_bits`` equal slices; each of
    the N partitions lives in a slice drawn (without replacement) from an
    injected :class:`random.Random`.  The public orbit scheme pins partition
    *i* to slice *i*; here an attacker guessing where variant data lives must
    search the slice space, and any probe that lands inside *some* variant's
    slice -- but not all of them -- diverges and raises an alarm.  Bases are
    pairwise distinct by construction, so the round-trip/disjoint-inverse
    invariants hold for every drawn key.
    """

    kind = "keyed-orbit"

    #: Keep at least 2^16 nominal addresses so real program layouts still fit.
    MAX_KEY_BITS = 16

    def __init__(
        self,
        num_partitions: int,
        *,
        key_bits: int = 8,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ):
        super().__init__(num_partitions)
        if not 1 <= key_bits <= self.MAX_KEY_BITS:
            raise PartitionSchemeError(
                f"key_bits must be in 1..{self.MAX_KEY_BITS}, got {key_bits}"
            )
        if (1 << key_bits) < num_partitions:
            raise PartitionSchemeError(
                f"2^{key_bits} slices cannot host {num_partitions} partitions; "
                f"raise key_bits to at least {_partition_bits(num_partitions)}"
            )
        self.key_bits = key_bits
        self.shift = VALUE_BITS - key_bits
        self._rng = _keyed_rng(seed, rng)
        self.rotate()

    def rotate(self) -> None:
        self.slices: tuple[int, ...] = tuple(
            self._rng.sample(range(1 << self.key_bits), self.num_partitions)
        )
        self._slice_owner = {s: i for i, s in enumerate(self.slices)}

    def secret(self) -> tuple[int, ...]:
        return self.slices

    def _check_slices(self, values: Sequence[int]) -> tuple[int, ...]:
        slices = tuple(int(v) for v in values)
        if len(slices) != self.num_partitions:
            raise PartitionSchemeError(
                f"{self.kind} secret wants {self.num_partitions} slices, "
                f"got {len(slices)}"
            )
        if len(set(slices)) != len(slices):
            raise PartitionSchemeError(f"{self.kind} slices must be distinct")
        if any(not 0 <= s < (1 << self.key_bits) for s in slices):
            raise PartitionSchemeError(
                f"{self.kind} slices must lie in [0, 2^{self.key_bits})"
            )
        return slices

    def install_secret(self, values: Sequence[int]) -> None:
        self.slices = self._check_slices(values)
        self._slice_owner = {s: i for i, s in enumerate(self.slices)}

    def base_of(self, index: int) -> int:
        self.check_index(index)
        return self.slices[index] << self.shift

    def partition_of(self, value: int) -> Optional[int]:
        return self._slice_owner.get((value & VALUE_MASK) >> self.shift)

    @property
    def nominal_capacity(self) -> int:
        return 1 << self.shift

    def describe(self) -> str:
        return (
            f"{self.kind} scheme: {self.num_partitions} partitions in secret "
            f"slices among 2^{self.key_bits} ({self.key_bits}-bit key)"
        )


class KeyedAddressScheme(KeyedOrbitScheme):
    """Keyed orbit slices plus secret per-partition slides (keyed ASLR).

    On top of the secret slice assignment, each partition is slid by a
    secret offset inside its slice (the keyed analogue of
    :class:`ExtendedOrbitScheme`), so even an attacker who learns a slice
    still faces low-byte uncertainty -- corresponding addresses differ
    across variants in their low bytes too.  Capacity shrinks by the
    largest drawn slide so placement holds over the whole nominal range.
    """

    kind = "keyed-address"

    def rotate(self) -> None:
        super().rotate()
        # Slides stay within a quarter slice so at least 3/4 of each slice
        # remains usable nominal capacity at any key size.
        span = max(1, (1 << self.shift) >> 2)
        self.offsets: tuple[int, ...] = tuple(
            self._rng.randrange(span) for _ in range(self.num_partitions)
        )

    def secret(self) -> tuple[int, ...]:
        return self.slices + self.offsets

    def install_secret(self, values: Sequence[int]) -> None:
        values = tuple(int(v) for v in values)
        if len(values) != 2 * self.num_partitions:
            raise PartitionSchemeError(
                f"{self.kind} secret wants {self.num_partitions} slices plus "
                f"{self.num_partitions} offsets, got {len(values)} values"
            )
        slices, offsets = values[: self.num_partitions], values[self.num_partitions :]
        span = max(1, (1 << self.shift) >> 2)
        if any(not 0 <= offset < span for offset in offsets):
            raise PartitionSchemeError(
                f"{self.kind} offsets must lie in [0, {span})"
            )
        self.slices = self._check_slices(slices)
        self._slice_owner = {s: i for i, s in enumerate(self.slices)}
        self.offsets = offsets

    def base_of(self, index: int) -> int:
        self.check_index(index)
        return (self.slices[index] << self.shift) + self.offsets[index]

    @property
    def nominal_capacity(self) -> int:
        return (1 << self.shift) - max(self.offsets)

    def describe(self) -> str:
        return (
            f"{self.kind} scheme: {self.num_partitions} partitions in secret "
            f"slices among 2^{self.key_bits}, each slid by a secret offset"
        )


class KeyedXorMaskScheme(KeyedScheme, XorMaskScheme):
    """UID re-expression with *secret* pairwise-distinct XOR masks.

    Masks are drawn without replacement from ``[0, 2**key_bits)`` (capped at
    31 bits so the Section 3.2 sign-bit constraint holds by construction).
    Unlike the public orbit masks, variant 0's mask is secret too: an
    attacker cannot craft a concrete ``uid_t`` that decodes to a chosen
    semantic UID in *any* variant without guessing that variant's mask.
    Distinct masks keep the deterministic guarantee -- any injected concrete
    value still decodes differently in at least two variants, so keyed UID
    detection remains certain, not probabilistic (the entropy game lives in
    the address family; see :mod:`repro.security`).
    """

    kind = "keyed-uid-xor"

    def __init__(
        self,
        num_partitions: int,
        *,
        key_bits: int = 16,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ):
        if not 1 <= key_bits <= 31:
            raise PartitionSchemeError(f"key_bits must be in 1..31, got {key_bits}")
        if (1 << key_bits) < num_partitions:
            raise PartitionSchemeError(
                f"2^{key_bits} masks cannot be pairwise distinct across "
                f"{num_partitions} partitions; raise key_bits"
            )
        self.key_bits = key_bits
        self._rng = _keyed_rng(seed, rng)
        super().__init__(self._draw_masks(num_partitions))

    def _draw_masks(self, num_partitions: int) -> tuple[int, ...]:
        return tuple(self._rng.sample(range(1 << self.key_bits), num_partitions))

    def rotate(self) -> None:
        # sample() draws without replacement and key_bits <= 31, so the
        # pairwise-distinct and sign-bit invariants hold for every rotation.
        self.masks = self._draw_masks(self.num_partitions)

    def secret(self) -> tuple[int, ...]:
        return self.masks

    def install_secret(self, values: Sequence[int]) -> None:
        masks = tuple(int(v) for v in values)
        if len(masks) != self.num_partitions:
            raise PartitionSchemeError(
                f"{self.kind} secret wants {self.num_partitions} masks, "
                f"got {len(masks)}"
            )
        if len(set(masks)) != len(masks):
            raise PartitionSchemeError(f"{self.kind} masks must be pairwise distinct")
        if any(not 0 <= mask < (1 << self.key_bits) for mask in masks):
            raise PartitionSchemeError(
                f"{self.kind} masks must lie in [0, 2^{self.key_bits})"
            )
        self.masks = masks

    def describe(self) -> str:
        return (
            f"{self.kind} scheme: {self.num_partitions} secret pairwise-distinct "
            f"XOR masks drawn from 2^{self.key_bits}"
        )


# ---------------------------------------------------------------------------
# The scheme registry
# ---------------------------------------------------------------------------

SchemeFactory = Callable[..., PartitionScheme]

#: Stable kind name -> factory.  Factories take ``num_partitions`` first and
#: any scheme-specific keyword parameters after it.
SCHEMES: dict[str, SchemeFactory] = {
    HighBitScheme.kind: HighBitScheme,
    OrbitScheme.kind: OrbitScheme,
    FdOrbitScheme.kind: FdOrbitScheme,
    ExtendedOrbitScheme.kind: ExtendedOrbitScheme,
    XorMaskScheme.kind: XorMaskScheme.for_uids,
    KeyedOrbitScheme.kind: KeyedOrbitScheme,
    KeyedAddressScheme.kind: KeyedAddressScheme,
    KeyedXorMaskScheme.kind: KeyedXorMaskScheme,
}


def register_scheme(kind: str, factory: SchemeFactory) -> None:
    """Register *factory* under *kind* (re-registering replaces the entry)."""
    SCHEMES[kind] = factory


def scheme_kinds() -> list[str]:
    """The registered scheme kinds, sorted."""
    return sorted(SCHEMES)


def create_scheme(kind: str, num_partitions: int, **params) -> PartitionScheme:
    """Build a scheme from its registered kind name."""
    try:
        factory = SCHEMES[kind]
    except KeyError:
        raise PartitionSchemeError(
            f"unknown partition scheme {kind!r}; registered schemes: "
            f"{', '.join(scheme_kinds())}"
        ) from None
    return factory(num_partitions, **params)


# ---------------------------------------------------------------------------
# Boundary-value enumeration (the guarantee-edge corpus feeds on this)
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class BoundaryValue:
    """One concrete value at an edge of a scheme's guarantee.

    ``partition`` is ``scheme.partition_of(value)`` at enumeration time:
    the unique partition whose region contains the value, or ``None`` when
    no partition claims it (every variant faults there).
    """

    label: str
    value: int
    partition: Optional[int]


#: Edges of the 32-bit value space itself, shared by every scheme: zero, the
#: largest signed-positive value (2^31 - 1), the sign bit, and the top.
GLOBAL_EDGE_VALUES: tuple[tuple[str, int], ...] = (
    ("zero", 0),
    ("int31-max", UID_MASK_31),
    ("sign-bit", 1 << (VALUE_BITS - 1)),
    ("value-max", VALUE_MASK),
)


def boundary_values(scheme: PartitionScheme) -> tuple[BoundaryValue, ...]:
    """Enumerate *scheme*'s guarantee-edge concrete values, deterministically.

    For region-carving schemes this walks every partition's placement
    boundary: the first and last concrete values the placement invariant
    covers (``base_of(i)`` and ``base_of(i) + nominal_capacity - 1``) plus
    the values one below and one past them -- the EFAULT edge, where
    ``untranslate(i, value)`` lands outside ``[0, nominal_capacity)`` and a
    dereference by variant *i* must fault.  Mask schemes do not carve the
    space, so their edges are the masks themselves (each is some variant's
    re-expression of zero).  The four global 32-bit edges (0, 2^31 - 1, the
    sign bit, the all-ones value) are always appended.  Duplicate concrete
    values keep their first label, so the result order is stable for a
    given scheme configuration.
    """
    entries: list[BoundaryValue] = []
    seen: set[int] = set()

    def add(label: str, value: int) -> None:
        value &= VALUE_MASK
        if value in seen:
            return
        seen.add(value)
        entries.append(BoundaryValue(label, value, scheme.partition_of(value)))

    if scheme.carves_regions:
        capacity = scheme.nominal_capacity
        for index in range(scheme.num_partitions):
            first = scheme.base_of(index)
            last = (first + capacity - 1) & VALUE_MASK
            add(f"p{index}-first", first)
            add(f"p{index}-below", first - 1)
            add(f"p{index}-last", last)
            add(f"p{index}-past", last + 1)
    else:
        for index, mask in enumerate(getattr(scheme, "masks", ())):
            add(f"p{index}-mask", mask)
    for label, value in GLOBAL_EDGE_VALUES:
        add(label, value)
    return tuple(entries)
