"""Simulated memory substrate: address spaces, regions, variables, corruption.

This package stands in for the real process memory the paper's attacks
operate on.  It provides:

* :mod:`~repro.memory.partition` -- the N-ary
  :class:`~repro.memory.partition.PartitionScheme` family (the paper's
  high-bit split, the top-bits orbit, Bruschi's offset-extended variant and
  the UID XOR-mask family) behind one re-expression protocol;
* :class:`~repro.memory.address_space.AddressSpace` -- per-variant address
  spaces carved by a partition scheme (the Figure 1 variation);
* :class:`~repro.memory.memory_model.MemoryRegion` /
  :class:`~repro.memory.memory_model.MemoryVariable` /
  :class:`~repro.memory.memory_model.StackFrame` -- byte-addressable storage
  for the security-critical program data the UID variation protects;
* :mod:`~repro.memory.corruption` -- the corruption primitives (full-word,
  partial-byte, bit-flip overwrites and buffer overflows) used by the attack
  library and the detection-property analyses.
"""

from repro.memory.address_space import ADDRESS_MASK, PARTITION_BIT, AddressSpace
from repro.memory.partition import (
    ExtendedOrbitScheme,
    HighBitScheme,
    KeyedAddressScheme,
    KeyedOrbitScheme,
    KeyedScheme,
    KeyedXorMaskScheme,
    OrbitScheme,
    PartitionScheme,
    PartitionSchemeError,
    SCHEMES,
    XorMaskScheme,
    create_scheme,
    default_uid_masks,
    register_scheme,
    scheme_kinds,
)
from repro.memory.corruption import (
    CorruptionSpec,
    apply_corruption,
    corruption_outcomes,
    detectable_by_disjoint_inverses,
    flip_bit,
    overflow_buffer,
    overflow_payload,
    overwrite_low_bytes,
    overwrite_word,
)
from repro.memory.memory_model import (
    WORD_MASK,
    WORD_SIZE,
    MemoryRegion,
    MemoryVariable,
    StackFrame,
)

__all__ = [
    "ADDRESS_MASK",
    "PARTITION_BIT",
    "AddressSpace",
    "CorruptionSpec",
    "ExtendedOrbitScheme",
    "HighBitScheme",
    "KeyedAddressScheme",
    "KeyedOrbitScheme",
    "KeyedScheme",
    "KeyedXorMaskScheme",
    "MemoryRegion",
    "MemoryVariable",
    "OrbitScheme",
    "PartitionScheme",
    "PartitionSchemeError",
    "SCHEMES",
    "StackFrame",
    "WORD_MASK",
    "WORD_SIZE",
    "XorMaskScheme",
    "apply_corruption",
    "corruption_outcomes",
    "create_scheme",
    "default_uid_masks",
    "detectable_by_disjoint_inverses",
    "flip_bit",
    "overflow_buffer",
    "overflow_payload",
    "overwrite_low_bytes",
    "overwrite_word",
    "register_scheme",
    "scheme_kinds",
]
