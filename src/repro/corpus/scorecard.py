"""Grading: actual outcomes against analytic expectations.

A record *passes* when the session produced exactly the
:class:`~repro.attacks.outcomes.OutcomeKind` the oracle predicted --
guarantee-exempt records included, which is the point: a mutation outside
the guarantee must be *classified* as expected-undetected, not hidden
behind a vague pass.  Rows aggregate per scheme x N x mutation class; the
misses list carries every divergence verbatim (these are the
"guarantee-edge misses" the experiment report surfaces).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, Sequence

from repro.attacks.outcomes import OutcomeKind
from repro.corpus.records import EXPECTED_EXEMPT, CorpusRecord


@dataclasses.dataclass(frozen=True)
class ScorecardRow:
    """Pass/fail counts for one scheme x N x mutation-class cell."""

    scheme: str
    num_variants: int
    mutation_class: str
    expected: str
    total: int
    passed: int

    @property
    def failed(self) -> int:
        return self.total - self.passed

    def to_dict(self) -> dict[str, Any]:
        return {
            "scheme": self.scheme,
            "num_variants": self.num_variants,
            "mutation_class": self.mutation_class,
            "expected": self.expected,
            "total": self.total,
            "passed": self.passed,
        }


@dataclasses.dataclass(frozen=True)
class Miss:
    """One record whose actual outcome diverged from the oracle."""

    record_id: str
    scheme: str
    num_variants: int
    mutation_class: str
    expected: str
    expected_kind: str
    actual_kind: str
    detail: str

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class Scorecard:
    """The whole corpus run, graded."""

    rows: tuple[ScorecardRow, ...]
    misses: tuple[Miss, ...]
    total: int
    passed: int
    exempt_total: int
    exempt_undetected: int
    exempt_compromises: int

    @property
    def all_pass(self) -> bool:
        return self.passed == self.total and not self.misses

    def to_dict(self) -> dict[str, Any]:
        """Schema-stable rendering (the cross-backend equality comparand)."""
        return {
            "total": self.total,
            "passed": self.passed,
            "exempt": {
                "total": self.exempt_total,
                "undetected": self.exempt_undetected,
                "compromises": self.exempt_compromises,
            },
            "rows": [row.to_dict() for row in self.rows],
            "misses": [miss.to_dict() for miss in self.misses],
        }


def evaluate_corpus(
    records: Sequence[CorpusRecord], outcomes: Sequence[Mapping[str, Any]]
) -> Scorecard:
    """Grade *outcomes* (from :func:`~repro.corpus.runner.run_corpus_records`)."""
    if len(records) != len(outcomes):
        raise ValueError(
            f"{len(records)} records but {len(outcomes)} outcomes; "
            f"grade the exact run"
        )
    cells: dict[tuple[str, int, str, str], list[int]] = {}
    misses: list[Miss] = []
    passed = exempt_total = exempt_undetected = exempt_compromises = 0
    for record, outcome in zip(records, outcomes):
        ok = outcome["kind"] == record.expected_kind
        passed += ok
        if record.expected == EXPECTED_EXEMPT:
            exempt_total += 1
            exempt_undetected += not outcome["detected"]
            exempt_compromises += (
                outcome["kind"] == OutcomeKind.UNDETECTED_COMPROMISE.value
            )
        key = (record.scheme, record.num_variants, record.mutation_class, record.expected)
        cells.setdefault(key, [0, 0])
        cells[key][0] += 1
        cells[key][1] += ok
        if not ok:
            misses.append(
                Miss(
                    record_id=record.record_id,
                    scheme=record.scheme,
                    num_variants=record.num_variants,
                    mutation_class=record.mutation_class,
                    expected=record.expected,
                    expected_kind=record.expected_kind,
                    actual_kind=str(outcome["kind"]),
                    detail=str(outcome.get("detail", "")),
                )
            )
    rows = tuple(
        ScorecardRow(
            scheme=scheme,
            num_variants=num_variants,
            mutation_class=mutation_class,
            expected=expected,
            total=total,
            passed=cell_passed,
        )
        for (scheme, num_variants, mutation_class, expected), (total, cell_passed) in sorted(
            cells.items()
        )
    )
    return Scorecard(
        rows=rows,
        misses=tuple(misses),
        total=len(records),
        passed=passed,
        exempt_total=exempt_total,
        exempt_undetected=exempt_undetected,
        exempt_compromises=exempt_compromises,
    )
