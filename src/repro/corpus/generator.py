"""The deterministic corpus generator.

``generate_corpus(seed, records)`` is a pure function: the full scenario
matrix is the cross product of

* **UID-family specs** -- the paper's 2-variant UID system, a
  deliberately weakened high-byte-mask variant (its masks agree on the low
  three bytes, opening a guarantee-exempt window the corpus must classify
  correctly, not hide), the N-ary UID orbit for N in 2..8, and keyed-mask
  fleets (seeds derived from the corpus seed, so the drawn masks are
  reproducible and the oracle reconstructs them exactly);
* **address-family specs** -- the paper's high-bit split, the address orbit
  for N in 3..8, Bruschi-style extended (slid) partitioning, and the keyed
  slice/slide families;
* **mutation classes** -- complete overwrites, boundary UIDs (sign bit,
  2^31-1), remote partial overwrites (with the strcpy terminator modelled),
  terminator-only off-by-one overruns, buffer-edge benign annotations,
  unanimity-preserving bit flips, in-place partial corruptions, absolute
  pointer injections, scheme boundary addresses (partition edges from
  :func:`~repro.memory.partition.boundary_values`), and partial pointer
  overwrites that walk the banner-region edge byte by byte;

plus a few cross-family records (UID attacks against address-only systems
and vice versa) that demonstrate each family's blind spot for the other's
values.  Every record's expectation comes from :mod:`repro.corpus.oracle`.

When *records* is smaller than the matrix, the trim selects round-robin
across mutation classes (preserving in-class order), so every class -- and
in particular the guarantee-exempt ones -- survives down to smoke sizes.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.api.seeding import derive_seed
from repro.api.spec import (
    ADDRESS_PARTITIONING_SPEC,
    UID_DIVERSITY_SPEC,
    SystemSpec,
    VariationSpec,
    address_orbit_spec,
    keyed_address_spec,
    keyed_uid_spec,
    uid_orbit_spec,
)
from repro.apps.httpd.vulnerable import ANNOTATION_BUFFER_SIZE, BANNER_REGION_BASE
from repro.attacks.memory_attacks import INJECTED_ABSOLUTE_ADDRESS
from repro.attacks.payloads import traversal_path
from repro.corpus.oracle import (
    Expectation,
    address_scheme_for_spec,
    annotation_expectation,
    corruption_expectation,
    pointer_expectation,
    remote_uid_overwrite_expectation,
    uid_masks_for_spec,
    uid_span_expectation,
)
from repro.corpus.records import CorpusRecord
from repro.memory.partition import boundary_values

#: Default generator seed (the paper's DSN 2008 presentation date, like the
#: other experiments) and default corpus size.
DEFAULT_SEED = 20080625
DEFAULT_RECORDS = 240

#: The weakened UID mask whose low three bytes agree with variant 0's
#: identity mask: spans of 1..3 corrupted low bytes decode unanimously
#: (guarantee-exempt), while any 4-byte corruption still diverges.
HIGH_BYTE_MASK = 0x7F000000

#: Partial-pointer walk: (partial_bytes, injected value).  With one attacker
#: byte the pointer keeps every variant's banner base -- offsets 8 and 48
#: stay readable (48 is the last offset a 16-byte read fits; guarantee
#: exempt) while 49 crosses the region edge by one byte and every variant
#: faults.  Two bytes zero the banner-selecting bit 21 (all variants fault
#: below their banner); three bytes re-inject the full banner offset, which
#: plain orbits accept unanimously but slid (extended) schemes detect.
POINTER_PARTIAL_WALK: tuple[tuple[int, int], ...] = (
    (1, 8),
    (1, 48),
    (1, 49),
    (2, 0),
    (3, BANNER_REGION_BASE + 8),
)

#: Boundary labels kept per address spec (first partition's lower edge, last
#: partition's upper edge, and the global 32-bit edges).
_BOUNDARY_LABELS = ("p0-first", "p0-below", "zero", "int31-max", "sign-bit", "value-max")


def _uid_specs(seed: int) -> list[tuple[str, SystemSpec]]:
    specs: list[tuple[str, SystemSpec]] = [("uid-xor", UID_DIVERSITY_SPEC)]
    specs.append(
        (
            "uid-xor-highmask",
            SystemSpec(
                name="2-variant-uid-highmask",
                variations=(VariationSpec.of("uid", mask=HIGH_BYTE_MASK),),
                transformed=True,
            ),
        )
    )
    for n in range(2, 9):
        specs.append(("uid-orbit", uid_orbit_spec(n)))
    for n in (2, 4, 8):
        specs.append(
            (
                "keyed-uid-xor",
                keyed_uid_spec(n, key_bits=16, seed=derive_seed(seed, "keyed-uid", n)),
            )
        )
    return specs


def _address_specs(seed: int) -> list[tuple[str, SystemSpec]]:
    specs: list[tuple[str, SystemSpec]] = [("high-bit", ADDRESS_PARTITIONING_SPEC)]
    for n in range(3, 9):
        specs.append(("orbit", address_orbit_spec(n)))
    for n in (2, 3, 4):
        specs.append(
            (
                "extended-orbit",
                SystemSpec(
                    name=f"{n}-variant-address-extended",
                    num_variants=n,
                    variations=(VariationSpec("address-extended"),),
                    transformed=False,
                ),
            )
        )
    for n in (2, 4):
        specs.append(
            (
                "keyed-orbit",
                keyed_address_spec(
                    n, key_bits=8, slide=False, seed=derive_seed(seed, "keyed-orbit", n)
                ),
            )
        )
    specs.append(
        (
            "keyed-address",
            keyed_address_spec(
                2, key_bits=8, slide=True, seed=derive_seed(seed, "keyed-slide", 2)
            ),
        )
    )
    return specs


class _MatrixBuilder:
    """Accumulates (class, attack, expectation) rows into numbered records."""

    def __init__(self) -> None:
        self.records: list[CorpusRecord] = []

    def add(
        self,
        *,
        family: str,
        scheme: str,
        spec: SystemSpec,
        mutation_class: str,
        attack: dict,
        expectation: Expectation,
    ) -> None:
        index = len(self.records)
        self.records.append(
            CorpusRecord(
                record_id=f"{index:04d}-{mutation_class}-{spec.name}",
                family=family,
                scheme=scheme,
                num_variants=spec.num_variants,
                mutation_class=mutation_class,
                attack=attack,
                spec=spec.to_dict(),
                expected=expectation.expected,
                expected_kind=expectation.kind.value,
                why=expectation.why,
            )
        )


def _uid_attacks_for(builder: _MatrixBuilder, scheme: str, spec: SystemSpec) -> None:
    masks = uid_masks_for_spec(spec)

    def overwrite(mutation_class: str, uid: int, partial_bytes: int) -> None:
        builder.add(
            family="uid",
            scheme=scheme,
            spec=spec,
            mutation_class=mutation_class,
            attack={
                "kind": "uid-overwrite",
                "name": f"uid-overwrite-0x{uid:08x}-k{partial_bytes}",
                "description": (
                    f"header overflow writes {partial_bytes} byte(s) of "
                    f"0x{uid:08x} over worker_uid"
                ),
                "uid": uid,
                "partial_bytes": partial_bytes,
            },
            expectation=remote_uid_overwrite_expectation(
                masks, uid=uid, partial_bytes=partial_bytes
            ),
        )

    overwrite("full-word", 0, 4)
    for uid in (1, 0x7FFFFFFF, 0x80000000):
        overwrite("boundary-uid", uid, 4)
    for partial_bytes in (1, 2, 3):
        overwrite("partial-overwrite", 0, partial_bytes)
    # A non-zero low byte: exempt against low-byte-agreeing masks, but the
    # unanimous decode is a harmless uid, not root.
    overwrite("partial-overwrite", 0x42, 1)

    for length in (ANNOTATION_BUFFER_SIZE - 1, ANNOTATION_BUFFER_SIZE):
        mutation_class = (
            "boundary-annotation" if length < ANNOTATION_BUFFER_SIZE else "off-by-one"
        )
        builder.add(
            family="uid",
            scheme=scheme,
            spec=spec,
            mutation_class=mutation_class,
            attack={
                "kind": "annotation",
                "name": f"annotation-{length}",
                "description": f"annotation of exactly {length} bytes at the buffer edge",
                "length": length,
                "path": traversal_path(),
            },
            expectation=annotation_expectation(masks, length=length),
        )

    for bit in (0, 31):
        builder.add(
            family="uid",
            scheme=scheme,
            spec=spec,
            mutation_class="bit-flip",
            attack={
                "kind": "uid-corruption",
                "name": f"bit-flip-{bit}",
                "description": f"in-place flip of uid bit {bit} in every variant",
                "corruption_kind": "bit-flip",
                "payload": bit,
            },
            expectation=corruption_expectation(
                masks, kind="bit-flip", payload=bit, byte_count=4
            ),
        )

    builder.add(
        family="uid",
        scheme=scheme,
        spec=spec,
        mutation_class="in-place-partial",
        attack={
            "kind": "uid-corruption",
            "name": "in-place-low-byte-zero",
            "description": "in-place zero of the uid's low byte (no terminator)",
            "corruption_kind": "partial-bytes",
            "payload": 0,
            "byte_count": 1,
        },
        expectation=corruption_expectation(
            masks, kind="partial-bytes", payload=0, byte_count=1
        ),
    )


def _address_attacks_for(builder: _MatrixBuilder, scheme_label: str, spec: SystemSpec) -> None:
    scheme = address_scheme_for_spec(spec)
    assert scheme is not None, spec.name

    def inject(mutation_class: str, label: str, address: int) -> None:
        builder.add(
            family="address",
            scheme=scheme_label,
            spec=spec,
            mutation_class=mutation_class,
            attack={
                "kind": "address-injection",
                "name": f"inject-{label}-0x{address:08x}",
                "description": f"complete pointer overwrite with 0x{address:08x} ({label})",
                "address": address,
            },
            expectation=pointer_expectation(scheme, value=address),
        )

    inject("pointer-injection", "absolute", INJECTED_ABSOLUTE_ADDRESS)
    inject("pointer-injection", "high", (0x80000000 | INJECTED_ABSOLUTE_ADDRESS))

    last = spec.num_variants - 1
    wanted = set(_BOUNDARY_LABELS) | {f"p{last}-last", f"p{last}-past"}
    for boundary in boundary_values(scheme):
        if boundary.label in wanted:
            inject("boundary-address", boundary.label, boundary.value)

    # Partial pointer overwrites: skipped for the slid keyed scheme, whose
    # secret low-byte offsets make the surviving-read offsets diverge across
    # variants (the oracle refuses to guess response divergence).
    if scheme_label != "keyed-address":
        for partial_bytes, value in POINTER_PARTIAL_WALK:
            builder.add(
                family="address",
                scheme=scheme_label,
                spec=spec,
                mutation_class="pointer-partial",
                attack={
                    "kind": "pointer-partial",
                    "name": f"pointer-partial-k{partial_bytes}-0x{value:08x}",
                    "description": (
                        f"overwrite the low {partial_bytes} byte(s) of the "
                        f"banner pointer with 0x{value:08x}"
                    ),
                    "value": value,
                    "partial_bytes": partial_bytes,
                },
                expectation=pointer_expectation(
                    scheme, value=value, partial_bytes=partial_bytes
                ),
            )

    builder.add(
        family="address",
        scheme=scheme_label,
        spec=spec,
        mutation_class="boundary-annotation",
        attack={
            "kind": "annotation",
            "name": f"annotation-{ANNOTATION_BUFFER_SIZE - 1}",
            "description": "largest in-bounds annotation (benign control)",
            "length": ANNOTATION_BUFFER_SIZE - 1,
            "path": traversal_path(),
        },
        expectation=annotation_expectation(
            uid_masks_for_spec(spec), length=ANNOTATION_BUFFER_SIZE - 1
        ),
    )


def _cross_family(builder: _MatrixBuilder) -> None:
    """Each family's blind spot for the other family's values."""
    address_spec = ADDRESS_PARTITIONING_SPEC
    zero_masks = uid_masks_for_spec(address_spec)
    builder.add(
        family="cross",
        scheme="high-bit",
        spec=address_spec,
        mutation_class="full-word",
        attack={
            "kind": "uid-overwrite",
            "name": "uid-overwrite-0x00000000-k4",
            "description": "full uid overwrite against an address-only system",
            "uid": 0,
            "partial_bytes": 4,
        },
        expectation=remote_uid_overwrite_expectation(zero_masks, uid=0, partial_bytes=4),
    )
    builder.add(
        family="cross",
        scheme="high-bit",
        spec=address_spec,
        mutation_class="off-by-one",
        attack={
            "kind": "annotation",
            "name": f"annotation-{ANNOTATION_BUFFER_SIZE}",
            "description": "terminator-only overrun against an address-only system",
            "length": ANNOTATION_BUFFER_SIZE,
            "path": traversal_path(),
        },
        expectation=annotation_expectation(zero_masks, length=ANNOTATION_BUFFER_SIZE),
    )
    # A pointer injection against the UID-only system: the pointer itself is
    # valid in every (unpartitioned) variant, but the overflow's collateral
    # zeroing of the gid/uid words diverges under the masks and is detected.
    uid_spec = UID_DIVERSITY_SPEC
    builder.add(
        family="cross",
        scheme="uid-xor",
        spec=uid_spec,
        mutation_class="pointer-injection",
        attack={
            "kind": "address-injection",
            "name": f"inject-absolute-0x{INJECTED_ABSOLUTE_ADDRESS:08x}",
            "description": "pointer injection against a uid-only system",
            "address": INJECTED_ABSOLUTE_ADDRESS,
        },
        expectation=uid_span_expectation(
            uid_masks_for_spec(uid_spec), span_bytes=4, value=0
        ),
    )


def build_matrix(seed: int = DEFAULT_SEED) -> list[CorpusRecord]:
    """The full scenario matrix for *seed*, in deterministic order."""
    builder = _MatrixBuilder()
    for scheme_label, spec in _uid_specs(seed):
        _uid_attacks_for(builder, scheme_label, spec)
    for scheme_label, spec in _address_specs(seed):
        _address_attacks_for(builder, scheme_label, spec)
    _cross_family(builder)
    return builder.records


def _trim(matrix: list[CorpusRecord], target: int) -> list[CorpusRecord]:
    """Round-robin across mutation classes, preserving matrix order."""
    by_class: dict[str, deque[int]] = {}
    for index, record in enumerate(matrix):
        by_class.setdefault(record.mutation_class, deque()).append(index)
    queues = [by_class[name] for name in sorted(by_class)]
    chosen: set[int] = set()
    while len(chosen) < target:
        progressed = False
        for queue in queues:
            if queue and len(chosen) < target:
                chosen.add(queue.popleft())
                progressed = True
        if not progressed:
            break
    return [matrix[index] for index in sorted(chosen)]


def generate_corpus(
    seed: int = DEFAULT_SEED, *, records: int = DEFAULT_RECORDS
) -> list[CorpusRecord]:
    """Generate the corpus: at most *records* scenarios, purely from *seed*."""
    if records < 1:
        raise ValueError(f"a corpus needs at least one record, got {records}")
    matrix = build_matrix(seed)
    if records >= len(matrix):
        return matrix
    return _trim(matrix, records)


def mutation_classes(records: Iterable[CorpusRecord]) -> list[str]:
    """The distinct mutation classes present, sorted."""
    return sorted({record.mutation_class for record in records})
