"""The scenario-record schema and corpus directory format.

A corpus is a directory of single-record JSON files plus a ``manifest.json``
naming the generator seed and the record order.  Records are pure data --
the attack is a declarative description (:mod:`repro.corpus.runner` rebuilds
the real payload objects from it), the system is a standard
:class:`~repro.api.spec.SystemSpec` dict, and the expectation is a string
the analytic oracle derived at generation time.  Keeping records fully
serialized is what lets the process backend ship them to workers unchanged
and lets two generator runs be compared byte for byte.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Iterable, Mapping

#: Expected-outcome categories carried by every record.
EXPECTED_DETECTED = "detected"
EXPECTED_BENIGN = "benign"
EXPECTED_EXEMPT = "guarantee-exempt"

EXPECTED_CATEGORIES = frozenset(
    {EXPECTED_DETECTED, EXPECTED_BENIGN, EXPECTED_EXEMPT}
)

#: Name of the corpus directory's index file.
MANIFEST_NAME = "manifest.json"

_REQUIRED_KEYS = frozenset(
    {
        "id",
        "family",
        "scheme",
        "num_variants",
        "mutation_class",
        "attack",
        "spec",
        "expected",
        "expected_kind",
        "why",
    }
)


class CorpusError(ValueError):
    """A corpus file or record is malformed."""


@dataclasses.dataclass(frozen=True)
class CorpusRecord:
    """One scenario: an attack, a system spec, and the analytic expectation.

    ``expected`` is the guarantee category (:data:`EXPECTED_DETECTED`,
    :data:`EXPECTED_BENIGN` or :data:`EXPECTED_EXEMPT`); ``expected_kind``
    the exact :class:`~repro.attacks.outcomes.OutcomeKind` value the oracle
    predicts; ``why`` the one-line derivation.
    """

    record_id: str
    family: str
    scheme: str
    num_variants: int
    mutation_class: str
    attack: Mapping[str, Any]
    spec: Mapping[str, Any]
    expected: str
    expected_kind: str
    why: str

    def __post_init__(self) -> None:
        if self.expected not in EXPECTED_CATEGORIES:
            raise CorpusError(
                f"record {self.record_id!r}: unknown expected category "
                f"{self.expected!r} (want one of {sorted(EXPECTED_CATEGORIES)})"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.record_id,
            "family": self.family,
            "scheme": self.scheme,
            "num_variants": self.num_variants,
            "mutation_class": self.mutation_class,
            "attack": dict(self.attack),
            "spec": dict(self.spec),
            "expected": self.expected,
            "expected_kind": self.expected_kind,
            "why": self.why,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], *, source: str = "<record>") -> "CorpusRecord":
        missing = _REQUIRED_KEYS - set(data)
        if missing:
            raise CorpusError(
                f"{source}: record is missing keys {', '.join(sorted(missing))}"
            )
        return cls(
            record_id=str(data["id"]),
            family=str(data["family"]),
            scheme=str(data["scheme"]),
            num_variants=int(data["num_variants"]),
            mutation_class=str(data["mutation_class"]),
            attack=dict(data["attack"]),
            spec=dict(data["spec"]),
            expected=str(data["expected"]),
            expected_kind=str(data["expected_kind"]),
            why=str(data["why"]),
        )


def write_corpus(records: Iterable[CorpusRecord], out_dir: Path, *, seed: int) -> Path:
    """Write *records* (one JSON file each) plus the manifest; returns the dir."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    ids = []
    for record in records:
        path = out_dir / f"{record.record_id}.json"
        path.write_text(record.to_json(), encoding="utf-8")
        ids.append(record.record_id)
    manifest = {"seed": seed, "count": len(ids), "records": ids}
    (out_dir / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return out_dir


def _load_json(path: Path) -> Any:
    """Load one JSON file, folding every failure mode into CorpusError."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CorpusError(f"cannot read corpus file {path}: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise CorpusError(f"corpus file {path} is not valid UTF-8: {exc}") from exc
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        # str(exc) carries "line L column C (char N)" -- keep it verbatim.
        raise CorpusError(f"corpus file {path} is not valid JSON: {exc}") from exc


def read_corpus(corpus_dir: Path) -> list[CorpusRecord]:
    """Read a corpus directory back, in manifest order."""
    corpus_dir = Path(corpus_dir)
    manifest_path = corpus_dir / MANIFEST_NAME
    if not manifest_path.is_file():
        raise CorpusError(
            f"{corpus_dir} has no {MANIFEST_NAME}; generate one with "
            f"`python -m repro corpus generate --out {corpus_dir}`"
        )
    manifest = _load_json(manifest_path)
    if not isinstance(manifest, Mapping) or "records" not in manifest:
        raise CorpusError(f"{manifest_path}: manifest must be an object with 'records'")
    records = []
    for record_id in manifest["records"]:
        path = corpus_dir / f"{record_id}.json"
        data = _load_json(path)
        if not isinstance(data, Mapping):
            raise CorpusError(f"{path}: record must be a JSON object")
        records.append(CorpusRecord.from_dict(data, source=str(path)))
    return records
