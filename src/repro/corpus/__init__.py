"""Generated scenario corpus and guarantee-boundary fuzzing.

The paper's central claim is a *detection guarantee*: any attack that
corrupts diversified data is caught, for every partition scheme and every N.
This package tests that guarantee empirically at scale:

* :mod:`~repro.corpus.records` -- the scenario-record schema (one JSON file
  per record) and corpus directory (de)serialization;
* :mod:`~repro.corpus.oracle` -- the analytic oracle that derives each
  record's *expected* outcome (detected / benign / guarantee-exempt) from
  the scheme's guarantee, byte for byte;
* :mod:`~repro.corpus.generator` -- the deterministic, seedable generator
  crossing base attacks with guarantee-edge mutations, boundary values, N
  sweeps (2..8) and the full scheme cross-product, keyed families included;
* :mod:`~repro.corpus.runner` -- runs a corpus through the campaign
  machinery on the virtual or process backend;
* :mod:`~repro.corpus.scorecard` -- grades actual against expected outcomes
  per scheme x N x mutation class.

The ``corpus`` experiment (:mod:`repro.analysis.experiments.corpus`) wires
these together and gates the scorecard under ``bench-diff``.
"""

from repro.corpus.generator import DEFAULT_RECORDS, generate_corpus
from repro.corpus.records import (
    EXPECTED_BENIGN,
    EXPECTED_DETECTED,
    EXPECTED_EXEMPT,
    CorpusError,
    CorpusRecord,
    read_corpus,
    write_corpus,
)
from repro.corpus.runner import run_corpus_records
from repro.corpus.scorecard import Scorecard, evaluate_corpus

__all__ = [
    "CorpusError",
    "CorpusRecord",
    "DEFAULT_RECORDS",
    "EXPECTED_BENIGN",
    "EXPECTED_DETECTED",
    "EXPECTED_EXEMPT",
    "Scorecard",
    "evaluate_corpus",
    "generate_corpus",
    "read_corpus",
    "run_corpus_records",
    "write_corpus",
]
