"""The analytic oracle: expected outcomes derived from the guarantee.

Every corpus record's expectation is *computed*, not asserted: the oracle
reconstructs the spec's actual re-expression layout (the same construction
path :func:`repro.api.builders.build_variations` uses at run time, so keyed
schemes with pinned seeds reproduce the exact drawn masks and bases) and
applies the paper's detection argument byte for byte.

**UID family.**  A corruption that touches the low ``span`` bytes of every
variant's stored ``worker_uid`` is detected iff some pair of masks differs
within those bytes -- XOR re-expression means decoded values diverge exactly
when the masks do.  The corruption *span* accounts for the strcpy
terminator: a remote partial overwrite of ``k < 4`` bytes lands ``k``
attacker bytes plus a terminating zero (span ``k + 1``); an in-place
``partial-bytes`` corruption has no terminator (span ``k``); the off-by-one
annotation is terminator-only (span 1).  Bit flips XOR an identical delta
into every variant, which *commutes* with XOR re-expression: every variant's
decode shifts by the same delta, the monitor sees agreement, and the flip is
guarantee-exempt for every mask scheme -- the corpus's deliberately
outside-the-guarantee mutation class.  When no pair diverges, the decoded
value every variant agrees on decides the rest: decoding to uid 0 keeps the
worker root, decoding to an invalid uid_t makes the credential drop fail
EINVAL and *also* leaves the process root (both undetected compromises),
and any other value is absorbed (no effect).

**Address family.**  The banner pointer is fully or partially overwritten;
on the next request every variant dereferences its corrupted pointer for the
16-byte banner.  A variant's read succeeds iff the pointer still lies in
that variant's partition and maps to a nominal address with 16 readable
bytes; *any* failed read faults, and any fault raises an alarm (even when
every variant faults -- unanimous crashes still halt the session as
detected).  Complete injections are therefore always detected under any
N >= 2 carving scheme: partitions are disjoint, so at most one variant's
read can succeed.  The exempt class is the *partial* overwrite that
preserves every variant's partition-selecting high bytes and lands all
variants on the same nominal offset -- every read succeeds with identical
bytes and the attacker retains pointer control undetected (the Section 2.3
case; the extended/slid schemes push parts of it back into detection).
"""

from __future__ import annotations

import dataclasses

from repro.api.builders import build_variations
from repro.api.spec import SystemSpec
from repro.apps.httpd.vulnerable import (
    BANNER_REGION_BASE,
    BANNER_REGION_SIZE,
    BANNER_TEXT,
    STATE_REGION_BASE,
)
from repro.attacks.outcomes import OutcomeKind
from repro.core.variations.uid import UIDVariation
from repro.corpus.records import (
    EXPECTED_BENIGN,
    EXPECTED_DETECTED,
    EXPECTED_EXEMPT,
)
from repro.memory.partition import VALUE_MASK, PartitionScheme

#: The worker's semantic uid (``www-data`` in the standard host's passwd).
WORKER_UID = 33

#: Largest uid_t the kernel accepts (see ``validate_uid``: sign bit invalid).
MAX_VALID_UID = 0x7FFFFFFF

#: Bytes the banner dereference reads on every request.
BANNER_READ_LEN = len(BANNER_TEXT)

#: Size of the server-state region (see ``build_server_state``).
STATE_REGION_SIZE = 256

WORD_BYTES = 4


@dataclasses.dataclass(frozen=True)
class Expectation:
    """One record's analytic expectation."""

    expected: str  # detected | benign | guarantee-exempt
    kind: OutcomeKind  # the exact predicted outcome kind
    why: str


# ---------------------------------------------------------------------------
# Spec reconstruction
# ---------------------------------------------------------------------------


def uid_masks_for_spec(spec: SystemSpec) -> tuple[int, ...]:
    """The spec's per-variant UID XOR masks (all zero without UID diversity).

    Builds the actual variation stack, so keyed specs (which must pin their
    seeds in the corpus) yield the very masks a session built from the same
    spec will draw.
    """
    for variation in build_variations(spec):
        if isinstance(variation, UIDVariation):
            masks = getattr(variation, "masks", None)
            if masks is None:
                masks = (0, variation.mask)
            return tuple(int(m) & VALUE_MASK for m in masks)
    return tuple([0] * spec.num_variants)


def address_scheme_for_spec(spec: SystemSpec) -> "PartitionScheme | None":
    """The spec's region-carving partition scheme, or ``None``."""
    for variation in build_variations(spec):
        scheme = getattr(variation, "scheme", None)
        if scheme is not None and getattr(scheme, "carves_regions", False):
            return scheme
    return None


# ---------------------------------------------------------------------------
# UID-family expectations
# ---------------------------------------------------------------------------


def _low_mask(span_bytes: int) -> int:
    return VALUE_MASK if span_bytes >= WORD_BYTES else (1 << (8 * span_bytes)) - 1


def uid_span_expectation(
    masks: tuple[int, ...], *, span_bytes: int, value: int
) -> Expectation:
    """Expected outcome of corrupting the low *span_bytes* of the worker uid.

    *value*'s low span bytes replace the stored value's (terminator zeros
    must already be folded into *value* by the caller).
    """
    low = _low_mask(span_bytes)
    first = masks[0] & low
    if any((mask & low) != first for mask in masks):
        return Expectation(
            EXPECTED_DETECTED,
            OutcomeKind.DETECTED,
            f"masks differ within the corrupted low {span_bytes} byte(s); "
            f"decoded uids diverge at the next credential call",
        )
    # Unanimity: every variant decodes the corruption to the same uid.
    decoded = ((value ^ masks[0]) & low) | (WORKER_UID & ~low & VALUE_MASK)
    return _unanimous_expectation(
        decoded, f"all masks agree on the corrupted low {span_bytes} byte(s)"
    )


def _unanimous_expectation(decoded: int, agreement: str) -> Expectation:
    """Outcome when every variant decodes a corruption to the same *decoded*.

    The monitor sees agreement, so nothing alarms; what happens next follows
    the kernel's uid_t semantics.  Decoding to 0 keeps the worker root
    outright.  Decoding to an *invalid* uid_t (sign bit set, Section 3.2)
    makes the security-critical ``seteuid`` fail with EINVAL in every
    variant identically -- and a failed drop leaves the process root, the
    classic unchecked-setuid failure.  Any other value is an ordinary
    unprivileged uid and the corruption is absorbed.
    """
    if decoded == 0:
        return Expectation(
            EXPECTED_EXEMPT,
            OutcomeKind.UNDETECTED_COMPROMISE,
            f"{agreement}; every variant decodes uid 0 (root retained) -- "
            f"outside the guarantee",
        )
    if decoded > MAX_VALID_UID:
        return Expectation(
            EXPECTED_EXEMPT,
            OutcomeKind.UNDETECTED_COMPROMISE,
            f"{agreement}; every variant decodes invalid uid 0x{decoded:08x}, "
            f"the credential drop fails with EINVAL and the process stays "
            f"root -- outside the guarantee",
        )
    return Expectation(
        EXPECTED_EXEMPT,
        OutcomeKind.NO_EFFECT,
        f"{agreement}; every variant decodes uid {decoded} (harmless) -- "
        f"outside the guarantee but not a win",
    )


def remote_uid_overwrite_expectation(
    masks: tuple[int, ...], *, uid: int, partial_bytes: int
) -> Expectation:
    """Remote header overflow writing *partial_bytes* of *uid* (plus terminator)."""
    if partial_bytes >= WORD_BYTES:
        span, value = WORD_BYTES, uid & VALUE_MASK
    else:
        # k attacker bytes + the copied terminator zero at byte k.
        span = partial_bytes + 1
        value = uid & _low_mask(partial_bytes)
    return uid_span_expectation(masks, span_bytes=span, value=value)


def annotation_expectation(masks: tuple[int, ...], *, length: int) -> Expectation:
    """An annotation of *length* filler bytes (64-byte buffer)."""
    from repro.apps.httpd.vulnerable import ANNOTATION_BUFFER_SIZE

    if length < ANNOTATION_BUFFER_SIZE:
        return Expectation(
            EXPECTED_BENIGN,
            OutcomeKind.NO_EFFECT,
            "annotation and terminator fit the buffer; nothing is corrupted",
        )
    if length == ANNOTATION_BUFFER_SIZE:
        # Off-by-one: only the terminator lands out of bounds, zeroing the
        # low byte of worker_uid.
        return uid_span_expectation(masks, span_bytes=1, value=0)
    raise ValueError(f"annotation length {length} writes past the uid low byte")


def corruption_expectation(
    masks: tuple[int, ...], *, kind: str, payload: int, byte_count: int
) -> Expectation:
    """In-place :class:`~repro.memory.corruption.CorruptionSpec` expectation."""
    if kind == "bit-flip":
        decoded = WORKER_UID ^ (1 << payload)
        return _unanimous_expectation(
            decoded, "an identical XOR delta commutes with every mask"
        )
    if kind == "partial-bytes":
        return uid_span_expectation(masks, span_bytes=byte_count, value=payload)
    if kind == "full-word":
        return uid_span_expectation(masks, span_bytes=WORD_BYTES, value=payload)
    raise ValueError(f"unknown corruption kind {kind!r}")


# ---------------------------------------------------------------------------
# Address-family expectations
# ---------------------------------------------------------------------------


def _read_ok(scheme: PartitionScheme, index: int, pointer: int) -> bool:
    """Would variant *index*'s 16-byte banner read at *pointer* succeed?"""
    pointer &= VALUE_MASK
    if scheme.carves_regions and scheme.partition_of(pointer) != index:
        return False
    nominal = scheme.untranslate(index, pointer)
    for base, size in (
        (BANNER_REGION_BASE, BANNER_REGION_SIZE),
        (STATE_REGION_BASE, STATE_REGION_SIZE),
    ):
        if base <= nominal and nominal + BANNER_READ_LEN <= base + size:
            return True
    return False


def pointer_expectation(
    scheme: PartitionScheme, *, value: int, partial_bytes: int = WORD_BYTES
) -> Expectation:
    """Expected outcome of a (possibly partial) banner-pointer overwrite.

    For a partial overwrite the pointer keeps its high bytes per variant:
    ``post_i = (banner_i & keep) | (value & low)`` with the terminator
    zeroing one more byte (``keep`` excludes ``partial_bytes + 1`` low
    bytes).  Raises if the surviving reads land on *different* nominal
    offsets across variants -- those records are oracle-fragile and the
    generator must not emit them.
    """
    if partial_bytes >= WORD_BYTES:
        posts = [value & VALUE_MASK] * scheme.num_partitions
    else:
        low = _low_mask(partial_bytes)
        keep = ~_low_mask(partial_bytes + 1) & VALUE_MASK
        posts = [
            ((scheme.translate(i, BANNER_REGION_BASE) & keep) | (value & low))
            for i in range(scheme.num_partitions)
        ]
    ok = [_read_ok(scheme, i, post) for i, post in enumerate(posts)]
    if not all(ok):
        faulted = [i for i, good in enumerate(ok) if not good]
        return Expectation(
            EXPECTED_DETECTED,
            OutcomeKind.DETECTED,
            f"variant(s) {faulted} fault dereferencing the corrupted pointer "
            f"(outside their partition or past a region edge); any fault alarms",
        )
    nominals = {scheme.untranslate(i, post) for i, post in enumerate(posts)}
    if len(nominals) != 1:
        raise ValueError(
            "surviving reads land on different nominal offsets across "
            "variants; the oracle cannot predict response divergence"
        )
    return Expectation(
        EXPECTED_EXEMPT,
        OutcomeKind.UNDETECTED_COMPROMISE,
        f"every variant's corrupted pointer stays valid at the same nominal "
        f"offset 0x{nominals.pop():x}; unanimous reads raise no alarm and the "
        f"attacker keeps pointer control -- outside the guarantee",
    )
