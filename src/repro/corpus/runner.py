"""Run corpus records through the campaign machinery, on either backend.

A record is pure data, so the same record dict drives both tiers: the
virtual backend rebuilds the attack cell in process and interleaves it as a
resumable session under the campaign scheduler; the process backend ships
the dict to a pre-forked worker, which rebuilds the identical cell there
(:data:`CORPUS_RUNNER` is the worker-side entry point).  Results come back
in submission order on both paths, and a seeded corpus produces
byte-identical outcome dicts either way -- the cross-backend scorecard
equality the ``corpus`` experiment claims.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

from repro.api.spec import SystemSpec
from repro.attacks.memory_attacks import AddressInjectionAttack, prepare_address_attack
from repro.attacks.mutators import PartialPointerAttack, annotation_overflow_payload
from repro.attacks.outcomes import AttackOutcome, PreparedAttack
from repro.attacks.payloads import uid_overwrite_payload
from repro.attacks.uid_attacks import UIDAttack, prepare_uid_attack
from repro.corpus.records import CorpusError, CorpusRecord
from repro.engine.campaign import CampaignHaltPolicy, CampaignJob, run_jobs
from repro.engine.procpool import ProcessJob, ProcessWorkerPool, run_process_jobs
from repro.memory.corruption import CorruptionSpec

#: Worker-side entry point for the process backend.
CORPUS_RUNNER = "repro.corpus.runner:run_corpus_payload"


def build_attack(data: Mapping[str, Any]):
    """Rebuild the real attack object from a record's declarative dict."""
    kind = data.get("kind")
    name = str(data.get("name") or kind)
    description = str(data.get("description", ""))
    if kind == "uid-overwrite":
        return UIDAttack(
            name=name,
            description=description,
            payload=uid_overwrite_payload(
                int(data["uid"]), partial_bytes=int(data.get("partial_bytes", 4))
            ),
        )
    if kind == "annotation":
        return UIDAttack(
            name=name,
            description=description,
            payload=annotation_overflow_payload(
                int(data["length"]), path=str(data["path"])
            ),
        )
    if kind == "uid-corruption":
        return UIDAttack(
            name=name,
            description=description,
            corruption=CorruptionSpec(
                kind=str(data["corruption_kind"]),
                payload=int(data.get("payload", 0)),
                byte_count=int(data.get("byte_count", 4)),
            ),
        )
    if kind == "address-injection":
        return AddressInjectionAttack(
            name=name, description=description, address=int(data["address"])
        )
    if kind == "pointer-partial":
        return PartialPointerAttack(
            name=name,
            description=description,
            address=int(data["value"]),
            partial_bytes=int(data["partial_bytes"]),
        )
    raise CorpusError(f"unknown attack kind {kind!r} in record attack {data!r}")


def prepare_record(record: CorpusRecord) -> PreparedAttack:
    """Build the runnable attack-x-configuration cell a record describes."""
    spec = SystemSpec.from_dict(dict(record.spec))
    attack = build_attack(record.attack)
    if isinstance(attack, AddressInjectionAttack):
        return prepare_address_attack(attack, spec)
    return prepare_uid_attack(attack, spec)


def outcome_to_dict(outcome: AttackOutcome) -> dict[str, Any]:
    """A picklable, comparison-stable rendering of an attack outcome."""
    return {
        "attack": outcome.attack,
        "configuration": outcome.configuration,
        "kind": outcome.kind.value,
        "goal_reached": outcome.goal_reached,
        "detected": outcome.detected,
        "detail": outcome.detail,
    }


def run_corpus_payload(payload: dict) -> dict:
    """Worker-side record runner (the process backend's entry point)."""
    record = CorpusRecord.from_dict(payload)
    cell = prepare_record(record)
    session = cell.start()
    while not session.done:
        session.step()
    # The procpool result contract (RESULT_KEYS): scheduler accounting at the
    # top level, the cell's outcome dict under "value".
    return {
        "state": session.state.value,
        "rounds": session.rounds,
        "virtual_elapsed": session.virtual_elapsed,
        "value": outcome_to_dict(cell.finish(session)),
    }


def run_corpus_records(
    records: Sequence[CorpusRecord],
    *,
    backend: str = "virtual",
    workers: int = 1,
    rounds_per_turn: int = 8,
    pool: Optional[ProcessWorkerPool] = None,
) -> list[dict[str, Any]]:
    """Run every record; returns outcome dicts in record order."""
    if backend == "process":
        jobs = [
            ProcessJob(name=record.record_id, runner=CORPUS_RUNNER, payload=record.to_dict())
            for record in records
        ]
        execution = run_process_jobs(
            jobs,
            workers=workers,
            halt_policy=CampaignHaltPolicy.PER_CELL,
            rounds_per_turn=rounds_per_turn,
            pool=pool,
        )
    elif backend == "virtual":
        jobs = []
        for record in records:
            cell = prepare_record(record)
            jobs.append(
                CampaignJob(
                    name=record.record_id,
                    start=cell.start,
                    finish=(lambda finish: lambda session: outcome_to_dict(finish(session)))(
                        cell.finish
                    ),
                )
            )
        execution = run_jobs(
            jobs,
            parallelism=workers,
            rounds_per_turn=rounds_per_turn,
            halt_policy=CampaignHaltPolicy.PER_CELL,
        )
    else:
        raise ValueError(f"unknown backend {backend!r} (want 'virtual' or 'process')")
    return [job.value for job in execution.jobs]
