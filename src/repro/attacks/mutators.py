"""Guarantee-edge payload mutators.

The corpus generator (:mod:`repro.corpus`) does not invent new attack
mechanisms -- every record is still a header overflow or an in-place
corruption -- but it deliberately *mutates* the classic payloads toward the
edge of the detection guarantee:

* **partial pointer overwrites** keep the high bytes of every variant's
  banner pointer and replace only the low ones, the case plain partitioning
  is *not* guaranteed to detect (Section 2.3 / Bruschi et al.);
* **off-by-one annotation overflows** overrun the 64-byte buffer by exactly
  the string terminator, zeroing a single byte of the adjacent UID word --
  a one-byte corruption that lands *identically* in every variant;
* **boundary-length annotations** sit exactly at the buffer edge, the
  largest payload that must stay benign.

These builders bypass the guard rails of :mod:`repro.attacks.payloads`
(``benign_request`` refuses out-of-bounds annotations) on purpose: the
corpus needs to express the malformed cases too.
"""

from __future__ import annotations

import dataclasses

from repro.apps.httpd.http import format_request
from repro.apps.httpd.vulnerable import ANNOTATION_BUFFER_SIZE, VULNERABLE_HEADER
from repro.attacks.memory_attacks import AddressInjectionAttack
from repro.attacks.payloads import OverflowSpec


def partial_pointer_payload(
    value: int, *, partial_bytes: int = 1, path: str = "/index.html"
) -> bytes:
    """Overwrite only the low *partial_bytes* bytes of the banner pointer.

    The overflow must cross the three UID/GID words (zeroing them, as a real
    contiguous overwrite would) before reaching the pointer; the final word
    is trimmed to *partial_bytes*, so the pointer keeps its ``4 -
    (partial_bytes + 1)`` high bytes (the string terminator zeroes one more).
    A mutation that preserves every variant's partition-selecting high byte
    keeps the corrupted pointer *valid in every variant* -- the
    guarantee-exempt case plain partitioning cannot see.
    """
    spec = OverflowSpec(fields=(0, 0, 0, value), partial_bytes=partial_bytes)
    return format_request(path, headers={VULNERABLE_HEADER: spec.header_value()})


@dataclasses.dataclass(frozen=True)
class PartialPointerAttack(AddressInjectionAttack):
    """An address injection that overwrites only the pointer's low bytes.

    ``address`` holds the injected low-byte value; ``partial_bytes`` how many
    low-order bytes of it are written.  Reuses the
    :class:`AddressInjectionAttack` driver unchanged (the driver only calls
    :meth:`payload`), so ``prepare_address_attack`` dispatches it like any
    other pointer attack.
    """

    partial_bytes: int = 4

    def payload(self) -> bytes:
        return partial_pointer_payload(self.address, partial_bytes=self.partial_bytes)


def annotation_overflow_payload(length: int, *, path: str = "/index.html") -> bytes:
    """An annotation of exactly *length* filler bytes, overruns included.

    Unlike :func:`~repro.attacks.payloads.benign_request` this builder
    accepts lengths at or past :data:`ANNOTATION_BUFFER_SIZE`: a
    ``length == ANNOTATION_BUFFER_SIZE`` annotation is the off-by-one case
    where only the copied terminator lands out of bounds, zeroing the low
    byte of the adjacent ``worker_uid`` word.
    """
    if length < 0:
        raise ValueError(f"annotation length must be non-negative, got {length}")
    return format_request(path, headers={VULNERABLE_HEADER: "A" * length})


#: Annotation lengths at the buffer edge: the largest benign payload (the
#: terminator lands exactly in the last buffer byte) and the off-by-one
#: overrun (the terminator corrupts one byte past the buffer).
BOUNDARY_ANNOTATION_LENGTHS: tuple[int, ...] = (
    ANNOTATION_BUFFER_SIZE - 1,
    ANNOTATION_BUFFER_SIZE,
)
