"""Absolute-address injection attacks (the Figure 1 attack class).

The attack overwrites the server's banner pointer with an attacker-chosen
absolute address via the same header overflow used by the UID attacks.  On
the next request the server dereferences the pointer:

* in a single-process deployment the injected address is simply read (an
  information-disclosure/point-the-program-anywhere primitive);
* under address-space partitioning the injected address lies in at most one
  variant's partition, so the sibling variant segfaults and the monitor
  reports the attack -- the guarantee Figure 1 illustrates.

The extended partitioning variation is also exercised with a *partial*
pointer overwrite (low bytes only), the case plain partitioning cannot detect
when the attacker preserves the high byte.
"""

from __future__ import annotations

import dataclasses

from repro.api.builders import build_session
from repro.api.spec import ADDRESS_PARTITIONING_SPEC, SINGLE_PROCESS_SPEC, SystemSpec
# Module (not name) import: repro.apps.catalog imports the payload builders
# from this package, so binding the module and resolving get_app at call time
# keeps the import order working from either end of the cycle.
from repro.apps import catalog as _catalog
from repro.apps.httpd.vulnerable import BANNER_REGION_BASE
from repro.attacks.outcomes import AttackOutcome, PreparedAttack, classify
from repro.kernel.host import build_standard_host
from repro.kernel.kernel import SimulatedKernel

#: An absolute address the attacker aims the banner pointer at: it lies in
#: variant 0's partition (high bit clear), a few words into the banner region,
#: so variant 0 reads it happily while variant 1 faults.
INJECTED_ABSOLUTE_ADDRESS = BANNER_REGION_BASE + 8


@dataclasses.dataclass(frozen=True)
class AddressInjectionAttack:
    """A pointer-overwrite attack delivered through the header overflow."""

    name: str
    description: str
    address: int
    #: Which registered serving app carries the overflow on its wire format.
    app: str = "httpd"

    def payload(self) -> bytes:
        """The corrupting request (a later benign request triggers the use)."""
        return _catalog.get_app(self.app).pointer_overwrite(self.address)


def standard_address_attacks(app: str = "httpd") -> list[AddressInjectionAttack]:
    """The address-injection attacks used by the Figure 1 experiment."""
    return [
        AddressInjectionAttack(
            name="absolute-address-injection",
            description="complete pointer overwrite with an absolute address",
            address=INJECTED_ABSOLUTE_ADDRESS,
            app=app,
        ),
        AddressInjectionAttack(
            name="high-partition-address-injection",
            description="pointer aimed into the high partition (valid only in variant 1)",
            address=0x80000000 | INJECTED_ABSOLUTE_ADDRESS,
            app=app,
        ),
    ]


def _prepare_attack_host(attack: AddressInjectionAttack) -> SimulatedKernel:
    """Build the host and queue the Figure 1 sequence: warm up, corrupt, trigger."""
    serving = _catalog.get_app(attack.app)
    kernel = build_standard_host()
    serving.prepare_host(kernel)
    serving.connect(kernel, serving.benign_payload())
    serving.connect(kernel, attack.payload(), client="attacker")
    serving.connect(kernel, serving.benign_payload(serving.alternate_path), client="attacker")
    return kernel


def prepare_address_attack_single(
    attack: AddressInjectionAttack, *, configuration: str = "single-process"
) -> PreparedAttack:
    """Prepare the attack against the single-process server (an N=1 session)."""

    def start():
        kernel = _prepare_attack_host(attack)
        serving = _catalog.get_app(attack.app)
        factory = serving.make_factory(transformed=False, max_requests=3)
        return build_session(SINGLE_PROCESS_SPEC, kernel, factory, name=serving.name)

    def finish(session) -> AttackOutcome:
        variant = session.result().variants[0]
        # Goal for the single process: the dereference of the attacker-chosen
        # address went through (no crash) -- the attacker now controls what
        # the server reads.
        goal = variant.exited_normally
        crashed = not variant.exited_normally
        return AttackOutcome(
            attack=attack.name,
            configuration=configuration,
            kind=classify(goal_reached=goal, detected=False, crashed=crashed),
            goal_reached=goal,
            detected=False,
            detail=f"fault={variant.fault}",
        )

    return PreparedAttack(attack.name, configuration, start, finish)


def run_address_attack_single(
    attack: AddressInjectionAttack, *, configuration: str = "single-process"
) -> AttackOutcome:
    """Run the attack against the single-process server."""
    return prepare_address_attack_single(attack, configuration=configuration).run()


def prepare_address_attack_nvariant(
    attack: AddressInjectionAttack,
    spec: SystemSpec = ADDRESS_PARTITIONING_SPEC,
) -> PreparedAttack:
    """Prepare the attack against a declaratively specified N-variant system.

    The default spec reproduces the address-partitioned 2-variant system of
    Figure 1; any spec whose stack contains the UID variation must set
    ``transformed=True``, since the untransformed server diverges on benign
    traffic under diversified UID representations.
    """

    def start():
        kernel = _prepare_attack_host(attack)
        serving = _catalog.get_app(attack.app)
        factory = serving.make_factory(transformed=spec.transformed, max_requests=3)
        return build_session(spec, kernel, factory, name=serving.name)

    def finish(session) -> AttackOutcome:
        result = session.result()
        detected = result.attack_detected
        goal = not detected and all(v.exited_normally for v in result.variants)
        return AttackOutcome(
            attack=attack.name,
            configuration=spec.name,
            kind=classify(goal_reached=goal, detected=detected),
            goal_reached=goal,
            detected=detected,
            detail=result.first_alarm().describe() if detected else "no alarm",
        )

    return PreparedAttack(attack.name, spec.name, start, finish)


def run_address_attack_nvariant(
    attack: AddressInjectionAttack,
    spec: SystemSpec = ADDRESS_PARTITIONING_SPEC,
) -> AttackOutcome:
    """Run the attack against a declaratively specified N-variant system."""
    return prepare_address_attack_nvariant(attack, spec).run()


def prepare_address_attack(
    attack: AddressInjectionAttack, spec: SystemSpec
) -> PreparedAttack:
    """Prepare the appropriate cell for *attack* against the specified system."""
    if not spec.redundant:
        return prepare_address_attack_single(attack, configuration=spec.name)
    return prepare_address_attack_nvariant(attack, spec)
