"""Attack payload construction.

Payloads are ordinary HTTP requests -- the attacker uses the same channel as
legitimate clients (the paper's remote-attacker threat model), and the
N-variant framework replicates the bytes to every variant.  The interesting
part is the value of the vulnerable ``X-Annotation`` header: enough filler to
fill the 64-byte buffer, followed by the bytes the attacker wants written
over the server's cached UID fields (and optionally the banner pointer).

All payload builders return plain ``bytes`` so the same payloads drive the
single-process server (where the attack succeeds) and every N-variant
configuration (where it must be detected).
"""

from __future__ import annotations

import dataclasses

from repro.apps.httpd.http import format_request
from repro.apps.httpd.vulnerable import ANNOTATION_BUFFER_SIZE, VULNERABLE_HEADER

#: Number of ``..`` components needed to escape the default document root
#: (``/var/www/html``) back to ``/``.
TRAVERSAL_DEPTH = 3

#: The root-owned file the attacker wants to read once privileges are retained.
DEFAULT_TARGET_FILE = "/etc/shadow"


def traversal_path(target_file: str = DEFAULT_TARGET_FILE, depth: int = TRAVERSAL_DEPTH) -> str:
    """A request path that escapes the docroot and reaches *target_file*."""
    return "/" + "../" * depth + target_file.lstrip("/")


@dataclasses.dataclass(frozen=True)
class OverflowSpec:
    """Describes what the header overflow should write past the buffer.

    ``fields`` is an ordered list of 4-byte little-endian words written
    immediately after the filler, i.e. over ``worker_uid``, ``worker_gid``,
    ``admin_uid`` and ``banner_ptr`` in that order.  ``partial_bytes`` trims
    the *last* word to that many low-order bytes, modelling a partial
    overwrite that stops mid-word.
    """

    fields: tuple[int, ...]
    partial_bytes: int = 4
    filler: bytes = b"A"

    def header_value(self) -> str:
        """Render the overflow as an ``X-Annotation`` header value."""
        if not self.fields:
            raise ValueError("an overflow needs at least one field to write")
        if not 1 <= self.partial_bytes <= 4:
            raise ValueError("partial_bytes must be between 1 and 4")
        payload = bytearray(self.filler * ANNOTATION_BUFFER_SIZE)
        words = list(self.fields)
        for index, word in enumerate(words):
            encoded = (word & 0xFFFFFFFF).to_bytes(4, "little")
            if index == len(words) - 1:
                encoded = encoded[: self.partial_bytes]
            payload.extend(encoded)
        # Header values travel as latin-1 text; every byte value is representable.
        return payload.decode("latin-1")


def uid_overwrite_payload(
    uid: int = 0,
    *,
    path: str | None = None,
    partial_bytes: int = 4,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """A request whose header overflow overwrites ``worker_uid`` with *uid*.

    With ``partial_bytes=4`` this is the complete-value corruption the UID
    variation is guaranteed to detect; smaller values model the byte-level
    partial overwrites discussed in Section 2.3.  The request path defaults
    to a traversal that reads ``/etc/shadow`` so a successful (undetected)
    attack has an observable goal.
    """
    spec = OverflowSpec(fields=(uid,), partial_bytes=partial_bytes)
    headers = {VULNERABLE_HEADER: spec.header_value()}
    headers.update(extra_headers or {})
    return format_request(path or traversal_path(), headers=headers)


def uid_and_gid_overwrite_payload(uid: int = 0, gid: int = 0, *, path: str | None = None) -> bytes:
    """Overwrite both the cached worker uid and gid with attacker values."""
    spec = OverflowSpec(fields=(uid, gid))
    return format_request(
        path or traversal_path(), headers={VULNERABLE_HEADER: spec.header_value()}
    )


def banner_pointer_payload(address: int, *, path: str = "/index.html") -> bytes:
    """Overwrite the banner pointer with an absolute *address*.

    The filler preserves plausible values for the three UID/GID words it must
    cross (they are overwritten with zeros, which also corrupts them -- a real
    overflow cannot skip bytes), then plants the attacker's pointer.  Under
    address-space partitioning the injected address is valid in at most one
    variant, so the next banner dereference faults in the other.
    """
    spec = OverflowSpec(fields=(0, 0, 0, address))
    return format_request(path, headers={VULNERABLE_HEADER: spec.header_value()})


def benign_request(path: str = "/index.html", annotation: str | None = None) -> bytes:
    """A well-formed request, optionally with a short (in-bounds) annotation."""
    headers = {}
    if annotation is not None:
        if len(annotation) >= ANNOTATION_BUFFER_SIZE:
            raise ValueError("a benign annotation must fit in the buffer")
        headers[VULNERABLE_HEADER] = annotation
    return format_request(path, headers=headers)


# ---------------------------------------------------------------------------
# FTP payloads (the second serving workload)
# ---------------------------------------------------------------------------
#
# The mini-ftpd reuses the httpd's vulnerable state layout byte-for-byte, so
# the same :class:`OverflowSpec` words drive both applications; only the
# carrier differs: a ``SITE ANNOTATE`` command line instead of an
# ``X-Annotation`` header.  Every overflow word the standard attacks use
# (0, 1000, 1001, the injected banner addresses) is CR/LF-free, so the
# rendered overflow survives FTP's line framing unmangled.

#: The scripted FTP client's login pair.
FTP_USER = "anonymous"
FTP_PASSWORD = "guest"

#: Default benign RETR target on the FTP site.
DEFAULT_FTP_PATH = "/welcome.txt"


def format_ftp_commands(commands: list[str]) -> bytes:
    """Serialise an FTP conversation: CRLF-joined latin-1 command lines."""
    return "".join(command + "\r\n" for command in commands).encode("latin-1")


def _ftp_conversation(*, annotation: str | None, paths: list[str]) -> bytes:
    """A full login/annotate/retrieve/quit conversation."""
    commands = [f"USER {FTP_USER}", f"PASS {FTP_PASSWORD}"]
    if annotation is not None:
        commands.append(f"SITE ANNOTATE {annotation}")
    commands.extend(f"RETR {path}" for path in paths)
    commands.append("QUIT")
    return format_ftp_commands(commands)


def ftp_benign_request(path: str = DEFAULT_FTP_PATH, annotation: str | None = None) -> bytes:
    """A well-formed FTP conversation, optionally with an in-bounds annotation."""
    if annotation is not None and len(annotation) >= ANNOTATION_BUFFER_SIZE:
        raise ValueError("a benign annotation must fit in the buffer")
    return _ftp_conversation(annotation=annotation, paths=[path])


def ftp_uid_overwrite_payload(
    uid: int = 0,
    *,
    path: str | None = None,
    partial_bytes: int = 4,
) -> bytes:
    """An FTP conversation whose annotation overflow overwrites ``worker_uid``.

    The overflow bytes are identical to :func:`uid_overwrite_payload`'s; the
    RETR path defaults to the same ``/etc/shadow`` traversal (``..`` clamps
    at the filesystem root, so one traversal string escapes any docroot).
    """
    spec = OverflowSpec(fields=(uid,), partial_bytes=partial_bytes)
    return _ftp_conversation(
        annotation=spec.header_value(), paths=[path or traversal_path()]
    )


def ftp_banner_pointer_payload(address: int, *, path: str = DEFAULT_FTP_PATH) -> bytes:
    """An FTP conversation that overwrites the banner pointer with *address*.

    The following RETR dereferences the planted pointer (the ftpd's
    per-transfer banner touch), mirroring :func:`banner_pointer_payload`.
    """
    spec = OverflowSpec(fields=(0, 0, 0, address))
    return _ftp_conversation(annotation=spec.header_value(), paths=[path])
