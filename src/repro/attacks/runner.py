"""Deprecated campaign entry points, shimmed over :mod:`repro.api.campaign`.

Historically this module owned the campaign loop and a
:class:`CampaignConfiguration` record holding a bare tuple of variation
*classes*.  The declarative scenario API replaced both: systems are described
by :class:`~repro.api.spec.SystemSpec` (variations by registry name, JSON
round-trippable) and :func:`repro.api.campaign.run_campaign` runs any
attacks-x-specs cross product.  The legacy campaign entry points
(:class:`CampaignConfiguration`, :data:`STANDARD_CONFIGURATIONS`,
:func:`run_uid_campaign`, :func:`run_address_campaign`) survive for one
release as a thin translation layer, each emitting a
:class:`DeprecationWarning` pointing at its replacement; the attack-driver
and report names this module historically re-exported remain importable from
here, though the drivers themselves are now spec-based.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Optional, Sequence

from repro.api.campaign import CampaignReport, run_campaign
from repro.api.registry import registry
from repro.api.spec import SystemSpec, VariationSpec
from repro.attacks.memory_attacks import (  # noqa: F401  (legacy re-exports)
    AddressInjectionAttack,
    run_address_attack_nvariant,
    run_address_attack_single,
    standard_address_attacks,
)
from repro.attacks.outcomes import AttackOutcome, OutcomeKind  # noqa: F401
from repro.attacks.uid_attacks import (  # noqa: F401  (legacy re-exports)
    UIDAttack,
    run_uid_attack,
    standard_uid_attacks,
)
from repro.core.variations.address import AddressPartitioning
from repro.core.variations.base import Variation
from repro.core.variations.uid import UIDVariation


@dataclasses.dataclass(frozen=True)
class CampaignConfiguration:
    """One defended (or undefended) configuration to attack.

    .. deprecated::
        Use :class:`repro.api.spec.SystemSpec` -- it names variations through
        the registry (so configurations are serialisable data) instead of
        carrying class objects.  :meth:`to_spec` performs the translation.
    """

    name: str
    redundant: bool
    variations: tuple[type[Variation], ...] = ()
    transformed: bool = True

    def __post_init__(self) -> None:
        warnings.warn(
            "CampaignConfiguration is deprecated; describe configurations with "
            "repro.api.SystemSpec (variations by registry name) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        for cls in self.variations:
            if not (isinstance(cls, type) and issubclass(cls, Variation)):
                raise TypeError(
                    f"CampaignConfiguration.variations must be Variation subclasses, "
                    f"got {cls!r}"
                )

    def to_spec(self) -> SystemSpec:
        """The equivalent :class:`~repro.api.spec.SystemSpec`."""
        return SystemSpec(
            name=self.name,
            num_variants=2 if self.redundant else 1,
            variations=tuple(
                VariationSpec(registry.name_of(cls)) for cls in self.variations
            ),
            transformed=self.transformed,
        )


def _quiet_configuration(**kwargs) -> CampaignConfiguration:
    """Build a legacy configuration without the deprecation warning.

    Used only for the module-level STANDARD_CONFIGURATIONS constant, so that
    merely importing this shim stays silent; *using* the legacy API warns.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return CampaignConfiguration(**kwargs)


#: The configurations the detection matrix compares, mirroring the paper's
#: narrative.  Deprecated alongside the class; the spec-based equivalent is
#: :data:`repro.api.spec.STANDARD_SYSTEM_SPECS`.
STANDARD_CONFIGURATIONS: tuple[CampaignConfiguration, ...] = (
    _quiet_configuration(name="single-process", redundant=False, transformed=False),
    _quiet_configuration(
        name="2-variant-address",
        redundant=True,
        variations=(AddressPartitioning,),
        transformed=False,
    ),
    _quiet_configuration(
        name="2-variant-uid",
        redundant=True,
        variations=(UIDVariation,),
        transformed=True,
    ),
    _quiet_configuration(
        name="2-variant-address+uid",
        redundant=True,
        variations=(AddressPartitioning, UIDVariation),
        transformed=True,
    ),
)


def run_uid_campaign(
    attacks: Optional[Sequence] = None,
    configurations: Sequence[CampaignConfiguration] = STANDARD_CONFIGURATIONS,
) -> CampaignReport:
    """Run every UID attack against every configuration.

    .. deprecated::
        Use :func:`repro.api.campaign.run_campaign` with
        :class:`~repro.api.spec.SystemSpec` configurations.
    """
    warnings.warn(
        "run_uid_campaign is deprecated; use repro.api.run_campaign(specs, attacks)",
        DeprecationWarning,
        stacklevel=2,
    )
    selected = list(attacks) if attacks is not None else standard_uid_attacks()
    specs = [configuration.to_spec() for configuration in configurations]
    return run_campaign(specs, selected)


def run_address_campaign(attacks: Optional[Sequence] = None) -> CampaignReport:
    """Run the address-injection attacks against single and partitioned setups.

    .. deprecated::
        Use :func:`repro.api.campaign.run_campaign` with
        :data:`~repro.api.spec.SINGLE_PROCESS_SPEC` and
        :data:`~repro.api.spec.ADDRESS_PARTITIONING_SPEC`.
    """
    from repro.api.campaign import run_address_campaign_specs

    warnings.warn(
        "run_address_campaign is deprecated; use repro.api.run_campaign(specs, attacks)",
        DeprecationWarning,
        stacklevel=2,
    )
    selected = list(attacks) if attacks is not None else standard_address_attacks()
    return run_campaign(run_address_campaign_specs(), selected)
