"""Attack campaign runner: every attack against every configuration.

The detection-matrix experiment (and the EXPERIMENTS.md security table) needs
a cross product: each attack from the library run against the configurations
of interest, with the outcome classified.  This module provides that loop and
a small report structure the benchmarks and docs can render.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

from repro.attacks.memory_attacks import (
    AddressInjectionAttack,
    run_address_attack_nvariant,
    run_address_attack_single,
    standard_address_attacks,
)
from repro.attacks.outcomes import AttackOutcome, OutcomeKind
from repro.attacks.uid_attacks import UIDAttack, run_uid_attack, standard_uid_attacks
from repro.core.variations.address import AddressPartitioning
from repro.core.variations.uid import UIDVariation


@dataclasses.dataclass(frozen=True)
class CampaignConfiguration:
    """One defended (or undefended) configuration to attack."""

    name: str
    redundant: bool
    variations: tuple = ()
    transformed: bool = True


#: The configurations the detection matrix compares, mirroring the paper's
#: narrative: an undefended server, the address-partitioning baseline and the
#: UID data-diversity system.
STANDARD_CONFIGURATIONS: tuple[CampaignConfiguration, ...] = (
    CampaignConfiguration(name="single-process", redundant=False, transformed=False),
    CampaignConfiguration(
        name="2-variant-address",
        redundant=True,
        variations=(AddressPartitioning,),
        transformed=False,
    ),
    CampaignConfiguration(
        name="2-variant-uid",
        redundant=True,
        variations=(UIDVariation,),
        transformed=True,
    ),
    CampaignConfiguration(
        name="2-variant-address+uid",
        redundant=True,
        variations=(AddressPartitioning, UIDVariation),
        transformed=True,
    ),
)


@dataclasses.dataclass
class CampaignReport:
    """All outcomes from one campaign plus summary helpers."""

    outcomes: list[AttackOutcome] = dataclasses.field(default_factory=list)

    def add(self, outcome: AttackOutcome) -> None:
        """Append one outcome."""
        self.outcomes.append(outcome)

    def by_configuration(self, configuration: str) -> list[AttackOutcome]:
        """Outcomes recorded against *configuration*."""
        return [o for o in self.outcomes if o.configuration == configuration]

    def security_failures(self) -> list[AttackOutcome]:
        """Undetected compromises across the whole campaign."""
        return [o for o in self.outcomes if o.is_security_failure]

    def detection_rate(self, configuration: str) -> float:
        """Fraction of attacks detected in *configuration*."""
        outcomes = self.by_configuration(configuration)
        if not outcomes:
            return 0.0
        detected = sum(1 for o in outcomes if o.kind is OutcomeKind.DETECTED)
        return detected / len(outcomes)

    def matrix(self) -> dict[str, dict[str, str]]:
        """``{attack: {configuration: outcome kind}}`` for table rendering."""
        table: dict[str, dict[str, str]] = {}
        for outcome in self.outcomes:
            table.setdefault(outcome.attack, {})[outcome.configuration] = outcome.kind.value
        return table

    def describe(self) -> str:
        """Multi-line report."""
        lines = [o.describe() for o in self.outcomes]
        failures = self.security_failures()
        lines.append("")
        lines.append(f"undetected compromises: {len(failures)}")
        return "\n".join(lines)


def run_uid_campaign(
    attacks: Sequence[UIDAttack] | None = None,
    configurations: Sequence[CampaignConfiguration] = STANDARD_CONFIGURATIONS,
) -> CampaignReport:
    """Run every UID attack against every configuration."""
    attacks = list(attacks) if attacks is not None else standard_uid_attacks()
    report = CampaignReport()
    for attack in attacks:
        for configuration in configurations:
            variations = [cls() for cls in configuration.variations]
            outcome = run_uid_attack(
                attack,
                redundant=configuration.redundant,
                variations=variations,
                transformed=configuration.transformed,
                configuration=configuration.name,
            )
            report.add(outcome)
    return report


def run_address_campaign(
    attacks: Sequence[AddressInjectionAttack] | None = None,
) -> CampaignReport:
    """Run the address-injection attacks against single and partitioned setups."""
    attacks = list(attacks) if attacks is not None else standard_address_attacks()
    report = CampaignReport()
    for attack in attacks:
        report.add(run_address_attack_single(attack))
        report.add(run_address_attack_nvariant(attack))
    return report
