"""Attack library: payload builders and spec-based attack drivers.

Campaigns (attacks x system specs) run through
:func:`repro.api.campaign.run_campaign`; the legacy ``CampaignConfiguration``
/ ``run_uid_campaign`` / ``run_address_campaign`` shims were removed after
their one-release deprecation window.  :class:`~repro.api.campaign.CampaignReport`
stays importable from here for report-consuming callers.
"""

from repro.api.campaign import CampaignReport
from repro.attacks.code_injection import (
    CodeInjectionAttack,
    run_code_injection_tagged,
    run_code_injection_untagged,
)
from repro.attacks.memory_attacks import (
    AddressInjectionAttack,
    INJECTED_ABSOLUTE_ADDRESS,
    run_address_attack_nvariant,
    run_address_attack_single,
    standard_address_attacks,
)
from repro.attacks.outcomes import AttackOutcome, OutcomeKind, classify
from repro.attacks.payloads import (
    DEFAULT_TARGET_FILE,
    OverflowSpec,
    banner_pointer_payload,
    benign_request,
    traversal_path,
    uid_and_gid_overwrite_payload,
    uid_overwrite_payload,
)
from repro.attacks.uid_attacks import (
    SHADOW_MARKER,
    UIDAttack,
    run_corruption_attack_nvariant,
    run_corruption_attack_single,
    run_remote_attack_nvariant,
    run_remote_attack_single,
    run_uid_attack,
    standard_uid_attacks,
)

__all__ = [
    "AddressInjectionAttack",
    "AttackOutcome",
    "CampaignReport",
    "CodeInjectionAttack",
    "DEFAULT_TARGET_FILE",
    "INJECTED_ABSOLUTE_ADDRESS",
    "OutcomeKind",
    "OverflowSpec",
    "SHADOW_MARKER",
    "UIDAttack",
    "banner_pointer_payload",
    "benign_request",
    "classify",
    "run_address_attack_nvariant",
    "run_address_attack_single",
    "run_code_injection_tagged",
    "run_code_injection_untagged",
    "run_corruption_attack_nvariant",
    "run_corruption_attack_single",
    "run_remote_attack_nvariant",
    "run_remote_attack_single",
    "run_uid_attack",
    "standard_address_attacks",
    "standard_uid_attacks",
    "traversal_path",
    "uid_and_gid_overwrite_payload",
    "uid_overwrite_payload",
]
