"""Attack library: payload builders, attack drivers and the campaign runner."""

from repro.attacks.code_injection import (
    CodeInjectionAttack,
    run_code_injection_tagged,
    run_code_injection_untagged,
)
from repro.attacks.memory_attacks import (
    AddressInjectionAttack,
    INJECTED_ABSOLUTE_ADDRESS,
    run_address_attack_nvariant,
    run_address_attack_single,
    standard_address_attacks,
)
from repro.attacks.outcomes import AttackOutcome, OutcomeKind, classify
from repro.attacks.payloads import (
    DEFAULT_TARGET_FILE,
    OverflowSpec,
    banner_pointer_payload,
    benign_request,
    traversal_path,
    uid_and_gid_overwrite_payload,
    uid_overwrite_payload,
)
from repro.attacks.runner import (
    CampaignConfiguration,
    CampaignReport,
    STANDARD_CONFIGURATIONS,
    run_address_campaign,
    run_uid_campaign,
)
from repro.attacks.uid_attacks import (
    SHADOW_MARKER,
    UIDAttack,
    run_corruption_attack_nvariant,
    run_corruption_attack_single,
    run_remote_attack_nvariant,
    run_remote_attack_single,
    run_uid_attack,
    standard_uid_attacks,
)

__all__ = [
    "AddressInjectionAttack",
    "AttackOutcome",
    "CampaignConfiguration",
    "CampaignReport",
    "CodeInjectionAttack",
    "DEFAULT_TARGET_FILE",
    "INJECTED_ABSOLUTE_ADDRESS",
    "OutcomeKind",
    "OverflowSpec",
    "SHADOW_MARKER",
    "STANDARD_CONFIGURATIONS",
    "UIDAttack",
    "banner_pointer_payload",
    "benign_request",
    "classify",
    "run_address_attack_nvariant",
    "run_address_attack_single",
    "run_address_campaign",
    "run_code_injection_tagged",
    "run_code_injection_untagged",
    "run_corruption_attack_nvariant",
    "run_corruption_attack_single",
    "run_remote_attack_nvariant",
    "run_remote_attack_single",
    "run_uid_attack",
    "run_uid_campaign",
    "standard_address_attacks",
    "standard_uid_attacks",
    "traversal_path",
    "uid_and_gid_overwrite_payload",
    "uid_overwrite_payload",
]
