"""Attack outcome classification shared by every attack driver."""

from __future__ import annotations

import dataclasses
import enum
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.session import NVariantSession


class OutcomeKind(enum.Enum):
    """How an attack attempt ended."""

    #: The attacker reached their goal and no alarm was raised.
    UNDETECTED_COMPROMISE = "undetected-compromise"
    #: The monitor raised an alarm (the attack may or may not have progressed
    #: before being stopped; with the halt policy it never reaches its goal).
    DETECTED = "detected"
    #: The attack neither reached its goal nor triggered an alarm (e.g. the
    #: corruption was absorbed harmlessly or the payload had no effect).
    NO_EFFECT = "no-effect"
    #: The attack crashed the (single-variant) service without achieving its
    #: goal -- an availability loss but not a compromise.
    CRASHED = "crashed"


@dataclasses.dataclass(frozen=True)
class AttackOutcome:
    """Result of one attack attempt against one configuration."""

    attack: str
    configuration: str
    kind: OutcomeKind
    goal_reached: bool
    detected: bool
    detail: str = ""

    @property
    def is_security_failure(self) -> bool:
        """True when the defence failed: compromise without detection."""
        return self.kind is OutcomeKind.UNDETECTED_COMPROMISE

    def describe(self) -> str:
        """One-line rendering for reports."""
        return (
            f"{self.attack:<32} vs {self.configuration:<28} -> {self.kind.value}"
            + (f" ({self.detail})" if self.detail else "")
        )


@dataclasses.dataclass
class PreparedAttack:
    """One attack-x-configuration cell, ready to schedule.

    ``start`` lazily builds the cell's private simulated host and returns the
    resumable lockstep session; ``finish`` inspects the terminal session (and
    whatever ``start`` captured, e.g. the kernel's connection log) and
    produces the cell's :class:`AttackOutcome`.  Driving the session serially
    or interleaved under the campaign scheduler yields identical outcomes --
    the cell owns every bit of state it touches.
    """

    attack: str
    configuration: str
    start: Callable[[], "NVariantSession"]
    finish: Callable[["NVariantSession"], AttackOutcome]

    @property
    def name(self) -> str:
        """The cell's display name in campaign schedules."""
        return f"{self.attack}@{self.configuration}"

    def run(self) -> AttackOutcome:
        """Run this one cell to completion (the serial path)."""
        session = self.start()
        while not session.done:
            session.step()
        return self.finish(session)


def classify(*, goal_reached: bool, detected: bool, crashed: bool = False) -> OutcomeKind:
    """Map raw observations onto an :class:`OutcomeKind`."""
    if detected:
        return OutcomeKind.DETECTED
    if goal_reached:
        return OutcomeKind.UNDETECTED_COMPROMISE
    if crashed:
        return OutcomeKind.CRASHED
    return OutcomeKind.NO_EFFECT
