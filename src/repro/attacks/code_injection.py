"""Code-injection attacks against the instruction-set tagging variation.

Instruction-set tagging (Table 1) is included in the reproduction so the
model covers all four variations.  The attack model: the attacker manages to
overwrite part of a program's code region with their own machine code.  The
injected bytes are identical in every variant (they arrive through the same
replicated input), so they carry at most one variant's tag; checking the tag
before execution makes at least one variant raise an illegal-instruction
fault, which the monitor reports.
"""

from __future__ import annotations

import dataclasses

from repro.attacks.outcomes import AttackOutcome, classify
from repro.core.variations.instruction import InstructionSetTagging
from repro.isa.instructions import Instruction, Opcode, assemble
from repro.isa.interpreter import Interpreter, MachineState
from repro.isa.tagging import TAGGED_INSTRUCTION_SIZE, inject_untagged, tag_stream
from repro.kernel.errors import IllegalInstructionFault

#: The attacker's payload: load a syscall number and invoke it (think execve).
ATTACK_SYSCALL_NUMBER = 59


def benign_program() -> list[Instruction]:
    """A small benign program: compute a value, store it, halt."""
    return assemble(
        [
            (Opcode.LOADI, 1, 21),
            (Opcode.LOADI, 2, 21),
            (Opcode.ADD, 1, 2),
            (Opcode.LOADI, 3, 64),
            (Opcode.STORE, 3, 1),
            (Opcode.HALT,),
        ]
    )


def attack_payload() -> list[Instruction]:
    """Injected instructions that invoke the attacker's system call."""
    return assemble(
        [
            (Opcode.LOADI, 0, ATTACK_SYSCALL_NUMBER),
            (Opcode.SYSCALL,),
            (Opcode.HALT,),
        ]
    )


@dataclasses.dataclass(frozen=True)
class CodeInjectionAttack:
    """Overwrite the code stream at a fixed offset with raw instructions."""

    name: str = "untagged-code-injection"
    description: str = "inject raw (untagged) instructions over the benign code"
    inject_at_instruction: int = 2

    def corrupted_stream(self, variant_index: int) -> bytes:
        """The variant's tagged code image after the (identical) injection."""
        tagged = tag_stream(benign_program(), variant_index)
        offset = self.inject_at_instruction * TAGGED_INSTRUCTION_SIZE
        return inject_untagged(tagged, attack_payload(), offset)


def run_code_injection_untagged() -> AttackOutcome:
    """Baseline: no tagging at all -- the injection executes the attacker's call."""
    interpreter = Interpreter()
    state = MachineState()
    program = benign_program()
    payload = attack_payload()
    corrupted = program[:2] + payload + program[2 + len(payload):]
    interpreter.run(corrupted, state=state)
    goal = any(number == ATTACK_SYSCALL_NUMBER for number, _ in state.syscall_log)
    return AttackOutcome(
        attack="untagged-code-injection",
        configuration="single-process",
        kind=classify(goal_reached=goal, detected=False),
        goal_reached=goal,
        detected=False,
        detail=f"syscalls executed: {state.syscall_log}",
    )


def run_code_injection_tagged(attack: CodeInjectionAttack | None = None) -> AttackOutcome:
    """Tagged 2-variant case: the identical injection must fault somewhere."""
    attack = attack if attack is not None else CodeInjectionAttack()
    variation = InstructionSetTagging()
    interpreter = Interpreter()

    faulted_variants = []
    attacker_syscall_ran = False
    for index in range(variation.num_variants):
        corrupted = attack.corrupted_stream(index)
        state = MachineState()
        try:
            instructions = variation.untag_program(corrupted, index)
            interpreter.run(instructions, state=state)
        except IllegalInstructionFault:
            faulted_variants.append(index)
            continue
        if any(number == ATTACK_SYSCALL_NUMBER for number, _ in state.syscall_log):
            attacker_syscall_ran = True

    detected = bool(faulted_variants)
    goal = attacker_syscall_ran and not detected
    return AttackOutcome(
        attack=attack.name,
        configuration="2-variant-instruction-tagging",
        kind=classify(goal_reached=goal, detected=detected),
        goal_reached=goal,
        detected=detected,
        detail=f"faulting variants: {faulted_variants}",
    )
