"""UID-corruption attacks (the paper's Section 3 attack class).

Two delivery mechanisms are modelled:

* **Remote overflow attacks** deliver the corruption through the mini-httpd's
  vulnerable header copy: a single HTTP request both corrupts the cached
  ``worker_uid`` and asks (via path traversal) for a root-only file, so a
  successful attack is directly observable in the response.
* **In-place corruptions** (single-bit flips, including the high-bit flip the
  31-bit mask cannot see) act directly on the targeted memory word.  They
  model fault-style attacks such as the heat-lamp attack the paper cites, and
  they exist mainly to map the *boundary* of the detection guarantee.

Each attack can be run against a single-process server (where the paper's
claim is that it succeeds) and against any N-variant configuration (where the
UID variation must detect it, except in the documented high-bit blind spot).

Every driver is split into a ``prepare_*`` half that builds a
:class:`~repro.attacks.outcomes.PreparedAttack` -- a private kernel, a
resumable :class:`~repro.engine.session.NVariantSession` and the outcome
finalizer -- and a ``run_*`` half that simply drives the prepared cell to
completion.  The campaign scheduler interleaves the same prepared cells, so
serial and engine-parallel campaigns share one construction path and produce
identical outcomes by construction.  The single-process deployments run as
``num_variants=1`` sessions (the monitor degenerates to a no-op for N=1), so
the engine is the only execution path left.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.api.builders import build_session
from repro.api.spec import SINGLE_PROCESS_SPEC, SystemSpec, UID_DIVERSITY_SPEC
# Module (not name) import: repro.apps.catalog imports the payload builders
# from repro.attacks, so binding the module and resolving get_app at call
# time keeps the import order working from either end of the cycle.
from repro.apps import catalog as _catalog
from repro.attacks.outcomes import AttackOutcome, OutcomeKind, PreparedAttack, classify
from repro.attacks.payloads import traversal_path
from repro.core.nvariant import UIDCodec, VariantContext
from repro.kernel.host import build_standard_host
from repro.kernel.kernel import SimulatedKernel
from repro.memory.corruption import CorruptionSpec

#: Marker proving the attacker read /etc/shadow (see the standard host image).
SHADOW_MARKER = b"secrethash"


@dataclasses.dataclass(frozen=True)
class UIDAttack:
    """One UID-corruption attack.

    Exactly one of ``payload`` (remote HTTP delivery) or ``corruption``
    (in-place fault) is set.  ``goal_marker`` is the byte string whose
    appearance in a response proves a remote attack reached its goal (for the
    default traversal payloads, content of the root-only shadow file).
    """

    name: str
    description: str
    payload: Optional[bytes] = None
    corruption: Optional[CorruptionSpec] = None
    goal_marker: bytes = SHADOW_MARKER
    #: Which registered serving app the payload targets (and whose drivers
    #: host the attack).  In-place corruptions ignore the wire format but
    #: keep the field so campaign rows group per app.
    app: str = "httpd"

    def __post_init__(self) -> None:
        if (self.payload is None) == (self.corruption is None):
            raise ValueError("exactly one of payload or corruption must be provided")

    @property
    def remote(self) -> bool:
        """True for attacks delivered over the request channel."""
        return self.payload is not None


def standard_uid_attacks(app: str = "httpd") -> list[UIDAttack]:
    """The attack suite used by the detection-matrix experiment.

    The same seven attack classes exist against every registered serving app;
    only the wire carrier of the overflow differs (both servers share one
    vulnerable state layout, so the overflow words are identical).
    """
    serving = _catalog.get_app(app)
    return [
        UIDAttack(
            name="full-word-root-overwrite",
            description="overflow overwrites worker_uid with 0 (root); complete value",
            payload=serving.uid_overwrite(0),
            app=app,
        ),
        UIDAttack(
            name="full-word-user-overwrite",
            description="overflow overwrites worker_uid with 1000 (masquerade as alice)",
            payload=serving.uid_overwrite(1000, path=traversal_path("/home/alice/diary.txt")),
            goal_marker=b"alice's private notes",
            app=app,
        ),
        UIDAttack(
            name="partial-1-byte-overwrite",
            description="overflow rewrites only the low byte of worker_uid",
            payload=serving.uid_overwrite(0, partial_bytes=1),
            app=app,
        ),
        UIDAttack(
            name="partial-2-byte-overwrite",
            description="overflow rewrites the low two bytes of worker_uid",
            payload=serving.uid_overwrite(0, partial_bytes=2),
            app=app,
        ),
        UIDAttack(
            name="partial-3-byte-overwrite",
            description="overflow rewrites the low three bytes of worker_uid",
            payload=serving.uid_overwrite(0, partial_bytes=3),
            app=app,
        ),
        UIDAttack(
            name="low-bit-flip",
            description=(
                "in-place flip of bit 0 of worker_uid (fault-style attack; an "
                "identical XOR delta commutes with the XOR reexpression, so the "
                "paper places it outside the remote-attacker guarantee)"
            ),
            corruption=CorruptionSpec(kind="bit-flip", payload=0),
            app=app,
        ),
        UIDAttack(
            name="high-bit-flip",
            description=(
                "in-place flip of bit 31: the sign bit is the one bit the "
                "0x7FFFFFFF mask leaves unflipped (Section 3.2's documented "
                "blind spot); the corrupted value is also a 'negative' UID the "
                "kernel treats specially"
            ),
            corruption=CorruptionSpec(kind="bit-flip", payload=31),
            app=app,
        ),
    ]


# ---------------------------------------------------------------------------
# Remote (request-channel-delivered) attacks against a registered serving app
# ---------------------------------------------------------------------------


def _attack_goal_reached(kernel: SimulatedKernel, marker: bytes = SHADOW_MARKER) -> bool:
    """True when any response leaked the attack's protected target content.

    Deliberately app-agnostic: the scan covers every connection ever made on
    the host, so leaked content is found whether it travelled on an HTTP
    response or on an FTP data channel.
    """
    return any(marker in conn.response_bytes() for conn in kernel.network.connections)


def _prepare_remote_host(attack: UIDAttack, *, warmup_requests: int):
    """Build the attacked host: app state, warmup traffic, the attack itself.

    Returns ``(kernel, serving app)``; the caller builds the server factory
    and session.  All app specifics (extra host files, secondary channels,
    benign payload shape) come from the catalog entry.
    """
    serving = _catalog.get_app(attack.app)
    kernel = build_standard_host()
    serving.prepare_host(kernel)
    for _ in range(warmup_requests):
        serving.connect(kernel, serving.benign_payload())
    serving.connect(kernel, attack.payload, client="attacker")
    return kernel, serving


def prepare_remote_attack_single(
    attack: UIDAttack,
    *,
    transformed: bool = False,
    warmup_requests: int = 1,
    configuration: str | None = None,
) -> PreparedAttack:
    """Prepare a remote attack against the single-process server (no redundancy).

    The undefended deployment runs as a ``num_variants=1`` session: with a
    single variant the monitor can never observe a divergence, so the cell's
    ``detected`` is structurally ``False`` -- exactly the paper's baseline.
    """
    if not attack.remote:
        raise ValueError(f"{attack.name} is not a remote attack")
    if configuration is None:
        configuration = "single-process" + ("-transformed" if transformed else "")

    def start():
        kernel, serving = _prepare_remote_host(attack, warmup_requests=warmup_requests)
        factory = serving.make_factory(
            transformed=transformed, max_requests=warmup_requests + 1
        )
        spec = dataclasses.replace(SINGLE_PROCESS_SPEC, transformed=transformed)
        return build_session(spec, kernel, factory, name=serving.name)

    def finish(session) -> AttackOutcome:
        result = session.result()
        variant = result.variants[0]
        goal = _attack_goal_reached(session.kernel, attack.goal_marker)
        crashed = not variant.exited_normally
        kind = classify(goal_reached=goal, detected=False, crashed=crashed)
        return AttackOutcome(
            attack=attack.name,
            configuration=configuration,
            kind=kind,
            goal_reached=goal,
            detected=False,
            detail=f"exit={variant.exit_code} fault={variant.fault}",
        )

    return PreparedAttack(attack.name, configuration, start, finish)


def run_remote_attack_single(
    attack: UIDAttack,
    *,
    transformed: bool = False,
    warmup_requests: int = 1,
    configuration: str | None = None,
) -> AttackOutcome:
    """Run a remote attack against the single-process server (no redundancy)."""
    return prepare_remote_attack_single(
        attack,
        transformed=transformed,
        warmup_requests=warmup_requests,
        configuration=configuration,
    ).run()


def prepare_remote_attack_nvariant(
    attack: UIDAttack,
    spec: SystemSpec = UID_DIVERSITY_SPEC,
    *,
    warmup_requests: int = 1,
) -> PreparedAttack:
    """Prepare a remote attack against a declaratively specified N-variant system."""
    if not attack.remote:
        raise ValueError(f"{attack.name} is not a remote attack")

    def start():
        kernel, serving = _prepare_remote_host(attack, warmup_requests=warmup_requests)
        factory = serving.make_factory(
            transformed=spec.transformed, max_requests=warmup_requests + 1
        )
        return build_session(spec, kernel, factory, name=serving.name)

    def finish(session) -> AttackOutcome:
        result = session.result()
        goal = _attack_goal_reached(session.kernel, attack.goal_marker)
        detected = result.attack_detected
        kind = classify(goal_reached=goal, detected=detected)
        return AttackOutcome(
            attack=attack.name,
            configuration=spec.name,
            kind=kind,
            goal_reached=goal,
            detected=detected,
            detail=result.first_alarm().describe() if detected else "no alarm",
        )

    return PreparedAttack(attack.name, spec.name, start, finish)


def run_remote_attack_nvariant(
    attack: UIDAttack,
    spec: SystemSpec = UID_DIVERSITY_SPEC,
    *,
    warmup_requests: int = 1,
) -> AttackOutcome:
    """Run a remote attack against a declaratively specified N-variant system."""
    return prepare_remote_attack_nvariant(
        attack, spec, warmup_requests=warmup_requests
    ).run()


# ---------------------------------------------------------------------------
# In-place corruption attacks (fault-style, e.g. single-bit flips)
# ---------------------------------------------------------------------------


def _corruption_probe_factory(attack: UIDAttack, *, transformed: bool):
    """Program factory for in-place corruption attacks.

    The probe reproduces the privilege lifecycle the corruption targets:
    cache the worker uid in memory, drop to it, escalate back to root for a
    privileged operation, *then* have the attacker corrupt the cached value
    (the same bit/bytes in every variant -- a fault-style attacker cannot aim
    different corruptions at different variants), and finally perform the
    security-critical re-drop that consults the corrupted value.  The attack
    reaches its goal when the process is still root after that drop.
    """

    def factory(context: VariantContext):
        libc = context.libc
        codec = context.uid_codec if transformed else UIDCodec.identity()

        def program():
            from repro.apps.httpd.vulnerable import build_server_state
            from repro.kernel.filesystem import O_RDONLY
            from repro.kernel.passwd import parse_passwd
            from repro.memory.corruption import apply_corruption

            opened = yield from libc.open("/etc/passwd", O_RDONLY)
            data = (yield from libc.read(opened.value, 8192)).value
            yield from libc.close(opened.value)
            entries = parse_passwd(data.decode())
            worker_uid = next(e.uid for e in entries if e.name == "www-data")
            if transformed:
                worker_uid = (yield from libc.uid_value(worker_uid)).value

            layout = build_server_state(
                context.address_space,
                worker_uid=worker_uid,
                worker_gid=worker_uid,
                admin_uid=codec.constant(0),
            )

            # Normal lifecycle: drop, then escalate for privileged maintenance.
            yield from libc.seteuid(layout.worker_uid.get())
            yield from libc.seteuid(codec.constant(0))

            # The attacker's fault lands on the cached value...
            apply_corruption(layout.worker_uid, attack.corruption)

            # ...which the program then trusts for its security-critical drop.
            corrupted = layout.worker_uid.get()
            if transformed:
                corrupted = (yield from libc.uid_value(corrupted)).value
            yield from libc.seteuid(corrupted)

            euid = (yield from libc.geteuid()).value
            if transformed:
                still_root = (yield from libc.cc_eq(euid, codec.root)).value
            else:
                still_root = euid == 0
            yield from libc.exit(42 if still_root else 0)

        return program()

    return factory


def prepare_corruption_attack_single(
    attack: UIDAttack,
    *,
    transformed: bool = False,
    configuration: str | None = None,
) -> PreparedAttack:
    """Prepare an in-place corruption attack with no redundancy."""
    if attack.remote:
        raise ValueError(f"{attack.name} is a remote attack")
    if configuration is None:
        configuration = "single-process" + ("-transformed" if transformed else "")

    def start():
        kernel = build_standard_host()
        return build_session(
            SINGLE_PROCESS_SPEC,
            kernel,
            _corruption_probe_factory(attack, transformed=transformed),
            name="probe",
        )

    def finish(session) -> AttackOutcome:
        result = session.result()
        goal = any(v.exit_code == 42 for v in result.variants)
        crashed = any(not v.exited_normally for v in result.variants)
        kind = classify(goal_reached=goal, detected=False, crashed=crashed)
        return AttackOutcome(
            attack=attack.name,
            configuration=configuration,
            kind=kind,
            goal_reached=goal,
            detected=False,
            detail=attack.corruption.describe(),
        )

    return PreparedAttack(attack.name, configuration, start, finish)


def run_corruption_attack_single(
    attack: UIDAttack,
    *,
    transformed: bool = False,
    configuration: str | None = None,
) -> AttackOutcome:
    """Run an in-place corruption attack with no redundancy."""
    return prepare_corruption_attack_single(
        attack, transformed=transformed, configuration=configuration
    ).run()


def prepare_corruption_attack_nvariant(
    attack: UIDAttack,
    spec: SystemSpec = UID_DIVERSITY_SPEC,
) -> PreparedAttack:
    """Prepare an in-place corruption attack against a specified N-variant system.

    The corruption probe models the transformed build (the in-place threat
    model presumes the deployed data-diversity binary), so the probe is
    always transformed regardless of ``spec.transformed``.
    """
    if attack.remote:
        raise ValueError(f"{attack.name} is a remote attack")

    def start():
        kernel = build_standard_host()
        return build_session(
            spec,
            kernel,
            _corruption_probe_factory(attack, transformed=True),
            name="probe",
        )

    def finish(session) -> AttackOutcome:
        result = session.result()
        goal = any(v.exit_code == 42 for v in result.variants)
        detected = result.attack_detected
        kind = classify(goal_reached=goal, detected=detected)
        return AttackOutcome(
            attack=attack.name,
            configuration=spec.name,
            kind=kind,
            goal_reached=goal,
            detected=detected,
            detail=result.first_alarm().describe() if detected else attack.corruption.describe(),
        )

    return PreparedAttack(attack.name, spec.name, start, finish)


def run_corruption_attack_nvariant(
    attack: UIDAttack,
    spec: SystemSpec = UID_DIVERSITY_SPEC,
) -> AttackOutcome:
    """Run an in-place corruption attack against a specified N-variant system."""
    return prepare_corruption_attack_nvariant(attack, spec).run()


def prepare_uid_attack(
    attack: UIDAttack, spec: SystemSpec = UID_DIVERSITY_SPEC
) -> PreparedAttack:
    """Prepare the appropriate cell for *attack* against the specified system."""
    if spec.redundant:
        if attack.remote:
            return prepare_remote_attack_nvariant(attack, spec)
        return prepare_corruption_attack_nvariant(attack, spec)
    if attack.remote:
        return prepare_remote_attack_single(
            attack, transformed=spec.transformed, configuration=spec.name
        )
    return prepare_corruption_attack_single(
        attack, transformed=spec.transformed, configuration=spec.name
    )


def run_uid_attack(attack: UIDAttack, spec: SystemSpec = UID_DIVERSITY_SPEC) -> AttackOutcome:
    """Dispatch an attack to the appropriate driver for the specified system."""
    return prepare_uid_attack(attack, spec).run()
