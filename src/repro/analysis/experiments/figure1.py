"""Experiment: Figure 1 (two-variant address-space partitioning).

Figure 1 of the paper illustrates the framework: untrusted input is
replicated to two variants with disjoint address spaces; normal inputs are
served identically, while an attack that injects an absolute memory address
is necessarily invalid in at least one of the variants, whose memory-access
fault the monitor reports.  This experiment runs exactly that scenario on the mini-httpd: a
benign request must produce identical responses and no alarm, and an
absolute-address-injection attack must be detected via a variant fault.
"""

from __future__ import annotations

import dataclasses

from repro.api.experiments import ExperimentReport, ReportKeyValues
from repro.api.spec import ADDRESS_PARTITIONING_SPEC
from repro.apps.clients.webbench import WebBenchWorkload, drive_nvariant
from repro.attacks.memory_attacks import (
    run_address_attack_nvariant,
    run_address_attack_single,
    standard_address_attacks,
)
from repro.attacks.outcomes import AttackOutcome
from repro.core.properties import EquivalenceVerdict, check_normal_equivalence


@dataclasses.dataclass
class Figure1Result:
    """Benign equivalence plus attack outcomes for both deployments."""

    equivalence: EquivalenceVerdict
    benign_statuses: dict[int, int]
    single_outcomes: list[AttackOutcome]
    nvariant_outcomes: list[AttackOutcome]

    @property
    def reproduces_figure(self) -> bool:
        """Figure 1's claim: benign traffic equivalent, injections detected."""
        return self.equivalence.holds and all(o.detected for o in self.nvariant_outcomes)

    def to_report(self) -> ExperimentReport:
        """The scenario outcomes as a shared experiment report."""
        pairs = [
            ("normal equivalence on benign requests", self.equivalence.describe()),
            ("benign response statuses", dict(sorted(self.benign_statuses.items()))),
        ]
        for outcome in self.single_outcomes:
            pairs.append((f"single process vs {outcome.attack}", outcome.kind.value))
        for outcome in self.nvariant_outcomes:
            pairs.append(
                (
                    f"2-variant partitioned vs {outcome.attack}",
                    f"{outcome.kind.value} ({outcome.detail})",
                )
            )
        section = ReportKeyValues(
            title="Figure 1. Two-variant address partitioning",
            pairs=tuple((key, str(value)) for key, value in pairs),
        )
        claims = {
            "benign requests are served equivalently": self.equivalence.holds,
            "address injection succeeds against the single process": any(
                o.goal_reached for o in self.single_outcomes
            ),
            "every injection is detected under partitioning": all(
                o.detected for o in self.nvariant_outcomes
            ),
            "figure 1 claim reproduced": self.reproduces_figure,
        }
        return ExperimentReport(
            title="Figure 1: two-variant address partitioning",
            sections=(section,),
            claims=claims,
            result=self,
        )


def run(benign_requests: int = 8) -> Figure1Result:
    """Run the Figure 1 scenario."""
    workload = WebBenchWorkload(total_requests=benign_requests)

    def run_benign():
        _, result = drive_nvariant(
            workload, ADDRESS_PARTITIONING_SPEC.with_name("figure1-benign")
        )
        return result

    measurement, _ = drive_nvariant(
        WebBenchWorkload(total_requests=benign_requests),
        ADDRESS_PARTITIONING_SPEC.with_name("figure1-benign-measure"),
    )
    equivalence = check_normal_equivalence(run_benign)

    single_outcomes = []
    nvariant_outcomes = []
    for attack in standard_address_attacks():
        single_outcomes.append(run_address_attack_single(attack))
        nvariant_outcomes.append(run_address_attack_nvariant(attack))
    return Figure1Result(
        equivalence=equivalence,
        benign_statuses=measurement.status_counts,
        single_outcomes=single_outcomes,
        nvariant_outcomes=nvariant_outcomes,
    )


def experiment(*, benign_requests: int = 8) -> ExperimentReport:
    """Registry entry point: run the scenario, return the shared report."""
    return run(benign_requests=benign_requests).to_report()
