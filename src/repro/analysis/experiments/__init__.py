"""One experiment driver per paper table/figure plus the ablation suite.

Each module exposes ``run()`` returning a structured result with a
``format()`` method; the benchmark harness in ``benchmarks/`` wraps these and
EXPERIMENTS.md records their output.

* :mod:`~repro.analysis.experiments.table1` -- reexpression functions.
* :mod:`~repro.analysis.experiments.table2` -- detection system calls.
* :mod:`~repro.analysis.experiments.table3` -- performance of the four
  configurations.
* :mod:`~repro.analysis.experiments.figure1` -- address-space partitioning.
* :mod:`~repro.analysis.experiments.figure2` -- the data-diversity pipeline.
* :mod:`~repro.analysis.experiments.section4` -- transformation effort.
* :mod:`~repro.analysis.experiments.detection` -- the detection matrix.
* :mod:`~repro.analysis.experiments.ablations` -- design-choice ablations.
"""

from repro.analysis.experiments import (
    ablations,
    detection,
    figure1,
    figure2,
    section4,
    table1,
    table2,
    table3,
)

__all__ = [
    "ablations",
    "detection",
    "figure1",
    "figure2",
    "section4",
    "table1",
    "table2",
    "table3",
]
