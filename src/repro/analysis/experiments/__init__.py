"""One experiment driver per paper table/figure plus the ablation suite.

Each module exposes ``run()`` returning a structured result with a
``to_report()`` method, and an ``experiment()`` entry point registered in
:data:`repro.api.experiments.experiments` that returns the shared
:class:`~repro.api.experiments.ExperimentReport`.  The CLI
(``python -m repro experiment <name>``), JSON scenarios
(``{"scenario": "experiment", ...}``) and the benchmark harness all run
experiments through that registry rather than importing these modules
one-by-one.

* :mod:`~repro.analysis.experiments.table1` -- reexpression functions.
* :mod:`~repro.analysis.experiments.table2` -- detection system calls.
* :mod:`~repro.analysis.experiments.table3` -- performance of the four
  configurations.
* :mod:`~repro.analysis.experiments.figure1` -- address-space partitioning.
* :mod:`~repro.analysis.experiments.figure2` -- the data-diversity pipeline.
* :mod:`~repro.analysis.experiments.section4` -- transformation effort.
* :mod:`~repro.analysis.experiments.detection` -- the detection matrix.
* :mod:`~repro.analysis.experiments.ablations` -- design-choice ablations.
"""

from repro.analysis.experiments import (
    ablations,
    detection,
    figure1,
    figure2,
    section4,
    table1,
    table2,
    table3,
)

__all__ = [
    "ablations",
    "detection",
    "figure1",
    "figure2",
    "section4",
    "table1",
    "table2",
    "table3",
]
