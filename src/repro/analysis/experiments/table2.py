"""Experiment: reproduce Table 2 (detection system calls).

Regenerates the table of detection calls and exercises each of them twice in
a live 2-variant UID system: once with equivalent per-variant data (the call
must succeed silently) and once with attacker-identical data (the monitor
must raise the corresponding alarm).  This demonstrates both halves of each
call's contract rather than just printing the signatures.

All 2x8 probe systems run as sessions interleaved on one multi-session
engine (each on its own host), so the whole table costs one engine pass
instead of sixteen serial runs.
"""

from __future__ import annotations

import dataclasses

from repro.api.builders import build_session
from repro.api.experiments import ExperimentReport, ReportTable
from repro.api.spec import UID_DIVERSITY_SPEC
from repro.engine import run_sessions
from repro.core.alarm import AlarmType
from repro.core.detection_calls import TABLE2_DETECTION_CALLS, DetectionCallSpec
from repro.core.nvariant import VariantContext
from repro.kernel.host import build_standard_host
from repro.kernel.syscalls import Syscall


@dataclasses.dataclass
class DetectionCallCheck:
    """Behaviour of one detection call under benign and attack conditions."""

    spec: DetectionCallSpec
    benign_alarm: bool
    attack_alarm: bool
    attack_alarm_type: str

    @property
    def behaves_correctly(self) -> bool:
        """Silent on equivalent data, alarming on injected identical data."""
        return (not self.benign_alarm) and self.attack_alarm


@dataclasses.dataclass
class Table2Result:
    """Reproduced Table 2 plus the live behaviour checks."""

    checks: list[DetectionCallCheck]

    @property
    def all_correct(self) -> bool:
        """True when every detection call behaves as specified."""
        return all(check.behaves_correctly for check in self.checks)

    def to_report(self) -> ExperimentReport:
        """The table and behaviour summary as a shared experiment report."""
        table = ReportTable(
            title="Table 2. Detection System Calls",
            headers=("Function Signature", "Description"),
            rows=tuple(
                (check.spec.signature, check.spec.description) for check in self.checks
            ),
        )
        behaviour = ReportTable(
            title="Live behaviour in a 2-variant UID system",
            headers=("Call", "Benign data", "Injected data", "Alarm type"),
            rows=tuple(
                (
                    check.spec.syscall.value,
                    "silent" if not check.benign_alarm else "FALSE ALARM",
                    "alarm" if check.attack_alarm else "MISSED",
                    check.attack_alarm_type,
                )
                for check in self.checks
            ),
        )
        claims = {
            f"{check.spec.syscall.value} is silent on benign data and alarms on "
            "injected data": check.behaves_correctly
            for check in self.checks
        }
        return ExperimentReport(
            title="Table 2: detection system calls, exercised live",
            sections=(table, behaviour),
            claims=claims,
            result=self,
        )


def _probe_factory(syscall: Syscall, *, injected: bool):
    """Build a program that exercises one detection call once.

    With ``injected=False`` the UID operands come from the variant's codec
    (equivalent across variants); with ``injected=True`` the same concrete
    value is used in both variants, as an attacker-controlled value would be.
    """

    def factory(context: VariantContext):
        libc = context.libc
        codec = context.uid_codec

        def program():
            root = 12345 if injected else codec.constant(0)
            other = 67890 if injected else codec.constant(33)
            if syscall is Syscall.UID_VALUE:
                yield from libc.uid_value(root)
            elif syscall is Syscall.COND_CHK:
                # A UID-dependent branch decision: with injected data the two
                # variants would disagree about the comparison's outcome.
                condition = (codec.decode(root) == 0) if not injected else (context.index == 0)
                yield from libc.cond_chk(condition)
            else:
                yield from libc.syscall(syscall, root, other)
            yield from libc.exit(0)

        return program()

    return factory


def run() -> Table2Result:
    """Run the Table 2 reproduction (all probes interleaved on one engine)."""
    sessions = []
    for spec in TABLE2_DETECTION_CALLS:
        for injected in (False, True):
            sessions.append(
                build_session(
                    UID_DIVERSITY_SPEC,
                    build_standard_host(),
                    _probe_factory(spec.syscall, injected=injected),
                    name=f"table2-{spec.syscall.value}-{'attack' if injected else 'benign'}",
                )
            )
    engine_result = run_sessions(sessions, name="table2")

    checks = []
    results = iter(engine_result.sessions)
    for spec in TABLE2_DETECTION_CALLS:
        benign = next(results).result
        attack = next(results).result
        alarm_type = ""
        if attack.alarms:
            alarm_type = attack.first_alarm().alarm_type.value
        checks.append(
            DetectionCallCheck(
                spec=spec,
                benign_alarm=benign.attack_detected,
                attack_alarm=attack.attack_detected,
                attack_alarm_type=alarm_type or AlarmType.UID_DIVERGENCE.value,
            )
        )
    return Table2Result(checks=checks)


def experiment() -> ExperimentReport:
    """Registry entry point: run the table, return the shared report."""
    return run().to_report()
