"""Experiment: the generated scenario corpus against its analytic oracle.

The detection matrix (PR 3) asserts the paper's guarantee at a handful of
hand-written attack x configuration cells.  This experiment pressure-tests
the *boundary* of that guarantee instead: a seeded generator emits hundreds
of scenario records -- base attacks crossed with bit-granular payload
mutations, off-by-one overwrites, boundary uids and addresses (sign bit,
partition edges, ``2**31 - 1``), N swept over 2..8 and the scheme
cross-product including the keyed families -- and every record carries the
outcome the scheme's analytic guarantee *derives* for it (detected, benign,
or guarantee-exempt).  The whole corpus then runs through the campaign
machinery and is graded record by record.

The exempt class is the point, not a blemish: bit flips commute with XOR
re-expression, and a partial pointer overwrite can keep every variant inside
its partition at the same nominal offset.  Those mutations are *designed* to
evade detection, and the scorecard requires them to evade it -- an exempt
record that alarms is as much a miss as a guaranteed record that does not.

Claims: every record matches its expectation on every backend; the virtual
and process scorecards are identical; the exempt class demonstrably escapes
(with at least one outright undetected compromise); and the corpus itself
regenerates byte-identically from its seed.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.api.experiments import ExperimentReport, ReportKeyValues, ReportTable
from repro.corpus.generator import DEFAULT_RECORDS, generate_corpus
from repro.corpus.records import CorpusRecord, read_corpus
from repro.corpus.runner import run_corpus_records
from repro.corpus.scorecard import Scorecard, evaluate_corpus

#: Default root seed: the paper's publication date (DSN 2008, June 25).
DEFAULT_SEED = 20080625

#: Backends the ``both`` setting expands to, in run order.
ALL_BACKENDS = ("virtual", "process")


@dataclasses.dataclass
class CorpusResult:
    """The graded corpus: per-backend scorecards plus determinism evidence."""

    seed: int
    records: list[CorpusRecord]
    scorecards: dict[str, Scorecard]
    regenerate_identical: bool
    corpus_dir: str = ""

    @property
    def backends(self) -> list[str]:
        return list(self.scorecards)

    @property
    def scorecard(self) -> Scorecard:
        """The first backend's scorecard (all backends must agree anyway)."""
        return next(iter(self.scorecards.values()))

    def mutation_classes(self) -> list[str]:
        return sorted({record.mutation_class for record in self.records})

    def claim_results(self) -> dict[str, bool]:
        """The guarantee boundary, graded."""
        cards = list(self.scorecards.values())
        first = cards[0]
        return {
            "every scenario outcome matches its analytic expectation": all(
                card.all_pass for card in cards
            ),
            "virtual and process backends produce identical scorecards": all(
                card.to_dict() == first.to_dict() for card in cards[1:]
            ),
            "guarantee-exempt mutations escape detection as predicted": (
                first.exempt_total > 0
                and first.exempt_undetected == first.exempt_total
            ),
            "at least one exempt record is an undetected compromise": (
                first.exempt_compromises > 0
            ),
            "the corpus regenerates byte-identically from its seed": (
                self.regenerate_identical
            ),
        }

    @property
    def all_claims_hold(self) -> bool:
        return all(self.claim_results().values())

    def to_report(self) -> ExperimentReport:
        """The graded corpus as a shared experiment report."""
        card = self.scorecard
        summary = ReportKeyValues(
            title="Corpus",
            pairs=(
                ("seed", str(self.seed)),
                ("records", str(card.total)),
                ("source", self.corpus_dir or f"generated (seed {self.seed})"),
                ("backends", ", ".join(self.backends)),
                ("mutation classes", str(len(self.mutation_classes()))),
                (
                    "passed",
                    " / ".join(
                        f"{backend}: {c.passed}/{c.total}"
                        for backend, c in self.scorecards.items()
                    ),
                ),
                (
                    "guarantee-exempt",
                    f"{card.exempt_total} records, "
                    f"{card.exempt_undetected} undetected, "
                    f"{card.exempt_compromises} outright compromises",
                ),
            ),
        )
        rows = ReportTable(
            title="Scorecard: scheme x N x mutation class",
            headers=("scheme", "N", "mutation class", "expected", "total", "passed"),
            rows=tuple(
                (
                    row.scheme,
                    str(row.num_variants),
                    row.mutation_class,
                    row.expected,
                    str(row.total),
                    str(row.passed),
                )
                for row in card.rows
            ),
        )
        sections: list = [summary, rows]
        misses = [miss for c in self.scorecards.values() for miss in c.misses]
        if misses:
            sections.append(
                ReportTable(
                    title="Guarantee-edge misses",
                    headers=("record", "scheme", "expected kind", "actual kind"),
                    rows=tuple(
                        (m.record_id, m.scheme, m.expected_kind, m.actual_kind)
                        for m in misses
                    ),
                )
            )
        telemetry = {
            "records": card.total,
            "cells": len(card.rows),
            "backends": len(self.scorecards),
            "exempt_compromises": card.exempt_compromises,
        }
        return ExperimentReport(
            title="Scenario corpus vs the analytic detection guarantee",
            sections=tuple(sections),
            claims=self.claim_results(),
            telemetry=telemetry,
            result=self,
        )


def run(
    *,
    records: int = DEFAULT_RECORDS,
    seed: int = DEFAULT_SEED,
    backend: str = "both",
    workers: int = 8,
    corpus_dir: str = "",
) -> CorpusResult:
    """Generate (or load) the corpus, run it on the requested backend(s), grade it.

    ``backend="both"`` runs virtual then process and lets the claims compare
    the scorecards; ``corpus_dir`` loads a previously written corpus instead
    of generating one (its manifest seed wins over *seed*).
    """
    backends = ALL_BACKENDS if backend == "both" else (backend,)
    if corpus_dir:
        corpus = read_corpus(Path(corpus_dir))
        regenerate_identical = True  # determinism is a generator property
    else:
        corpus = generate_corpus(seed, records=records)
        replay = generate_corpus(seed, records=records)
        regenerate_identical = [r.to_json() for r in corpus] == [
            r.to_json() for r in replay
        ]
    scorecards = {
        name: evaluate_corpus(
            corpus, run_corpus_records(corpus, backend=name, workers=workers)
        )
        for name in backends
    }
    return CorpusResult(
        seed=seed,
        records=corpus,
        scorecards=scorecards,
        regenerate_identical=regenerate_identical,
        corpus_dir=corpus_dir,
    )


def experiment(
    *,
    records: int = DEFAULT_RECORDS,
    seed: int = DEFAULT_SEED,
    backend: str = "both",
    workers: int = 8,
    corpus_dir: str = "",
) -> ExperimentReport:
    """Registry entry point: grade the corpus, return the shared report."""
    return run(
        records=records,
        seed=seed,
        backend=backend,
        workers=workers,
        corpus_dir=corpus_dir,
    ).to_report()
