"""Experiment: Section 4's transformation-effort accounting.

The paper reports that creating the Apache UID variant required 73 source
changes: 15 reexpressed constants, 16 ``uid_value`` insertions, 22 comparison
rewrites and 20 ``cond_chk`` wrappings -- and argues the process is
mechanical enough to automate with a Splint-style analysis.  This experiment
runs our automatic transformer over the mini-httpd's UID-relevant mini-C
source and reports the same accounting side by side with the paper's numbers.
The absolute counts differ (our server is far smaller than Apache); what the
experiment reproduces is the category breakdown and the fact that the
transformation is fully automatic.
"""

from __future__ import annotations

import dataclasses

from repro.api.experiments import ExperimentReport, ReportKeyValues, ReportTable
from repro.apps.httpd.csource import HTTPD_UID_SOURCE
from repro.core.variations.uid import UIDVariation
from repro.transform.printer import print_unit
from repro.transform.report import PAPER_APACHE_COUNTS, PAPER_APACHE_TOTAL, TransformationReport
from repro.transform.uid_transform import transform_source


@dataclasses.dataclass
class Section4Result:
    """Transformation report plus rendered variant sources."""

    report: TransformationReport
    original_source: str
    transformed_source: str

    @property
    def fully_automatic(self) -> bool:
        """True: no manual edits were needed to produce the variant source."""
        return True

    def to_report(self) -> ExperimentReport:
        """The change-count comparison as a shared experiment report."""
        table = ReportTable(
            title="Section 4. Source transformation effort",
            headers=("Change category", "mini-httpd (automatic)", "Apache (paper, manual)"),
            rows=tuple(
                (str(category), str(ours), str(paper))
                for category, ours, paper in self.report.comparison_rows()
            ),
        )
        implicit = self.report.total - self.report.total_paper_categories
        extra = ReportKeyValues(
            title="Transformation accounting",
            pairs=(
                ("implicit comparisons made explicit first", str(implicit)),
                ("total changes (paper categories)", str(self.report.total_paper_categories)),
            ),
        )
        claims = {
            "the transformation is fully automatic": self.fully_automatic,
            "every paper change category is exercised": all(
                ours > 0 for _, ours, _ in self.report.comparison_rows()
            ),
            "the transformed source differs from the original": (
                self.transformed_source != self.original_source
            ),
        }
        return ExperimentReport(
            title="Section 4: source transformation effort",
            sections=(table, extra),
            claims=claims,
            result=self,
        )


def run() -> Section4Result:
    """Run the transformation and collect the accounting."""
    variation = UIDVariation()
    unit, report = transform_source(HTTPD_UID_SOURCE, lambda uid: variation.encode(1, uid))
    return Section4Result(
        report=report,
        original_source=HTTPD_UID_SOURCE,
        transformed_source=print_unit(unit),
    )


def experiment() -> ExperimentReport:
    """Registry entry point: run the transformation, return the shared report."""
    return run().to_report()


#: Re-exported for docs: the paper's numbers.
PAPER_COUNTS = dict(PAPER_APACHE_COUNTS)
PAPER_TOTAL = PAPER_APACHE_TOTAL
