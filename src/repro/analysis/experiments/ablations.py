"""Ablation experiments for the design choices DESIGN.md calls out.

Three design decisions in the paper have explicit alternatives that were
considered and rejected (or deferred); each ablation here makes the trade-off
measurable:

1. **Detection syscalls vs. plain syscall-boundary monitoring** (Section 5).
   With the detection calls, a corrupted UID is caught at its first use; with
   only ordinary syscall monitoring, detection waits until the corrupted
   value reaches a real kernel call.  We measure the detection latency (in
   system calls issued after the corrupting request) for both builds.
2. **XOR 0x7FFFFFFF vs. XOR 0xFFFFFFFF** (Section 3.2).  The full flip closes
   the sign-bit blind spot analytically, but produces UID representations
   the kernel rejects, breaking normal equivalence; we demonstrate both
   halves.
3. **Unshared files vs. in-process reexpression of external data**
   (Section 3.4).  Embedding ``R_1`` in the server lets an attacker who can
   inject a *semantic* UID value have the process itself reexpress it --
   the corrupted value then decodes identically in both variants and the
   attack is not detected.  With unshared files there is no such in-process
   path.
"""

from __future__ import annotations

import dataclasses

from repro.api.builders import build_session
from repro.api.experiments import ExperimentReport, ReportKeyValues
from repro.api.spec import SystemSpec, UID_DIVERSITY_SPEC, VariationSpec
from repro.apps.clients.webbench import WebBenchWorkload, drive_nvariant_many
from repro.core.reexpression import sample_domain
from repro.core.variations.uid import FullFlipUIDVariation, UIDVariation
from repro.engine import run_sessions
from repro.kernel.host import build_standard_host


# ---------------------------------------------------------------------------
# Ablation 1: detection syscalls vs plain syscall-boundary monitoring
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class DetectionLatencyResult:
    """Syscall-level detection latency with and without detection calls.

    Latency is measured in lockstep rounds between the corruption and the
    alarm.  The probe corrupts a cached UID and then performs several
    user-space uses of it (comparisons that steer application logic) before
    the value finally reaches a kernel call.  With the detection calls of
    Table 2 the very first use is exposed to the monitor; relying only on
    ordinary syscall-boundary monitoring, the divergence stays invisible
    until the corrupted value reaches ``setuid`` -- the precision-vs-
    intrusiveness trade-off Section 5 discusses.
    """

    with_detection_calls: int | None
    without_detection_calls: int | None
    user_space_uses: int

    @property
    def detects_strictly_earlier(self) -> bool:
        """Detection syscalls alarm before syscall-boundary monitoring does."""
        return (
            self.with_detection_calls is not None
            and self.without_detection_calls is not None
            and self.with_detection_calls < self.without_detection_calls
        )

    def section(self) -> ReportKeyValues:
        """This ablation's comparison as a report section."""
        return ReportKeyValues(
            title="Ablation 1: detection syscalls vs syscall-boundary monitoring",
            pairs=(
                (
                    "user-space UID uses between corruption and the kernel call",
                    str(self.user_space_uses),
                ),
                (
                    "rounds from corruption to alarm (with detection syscalls)",
                    str(self.with_detection_calls),
                ),
                (
                    "rounds from corruption to alarm (syscall-boundary monitoring only)",
                    str(self.without_detection_calls),
                ),
            ),
        )


def _latency_probe_factory(*, use_detection_calls: bool, user_space_uses: int):
    """Probe program for the detection-latency ablation."""

    def factory(context):
        libc = context.libc
        codec = context.uid_codec

        def program():
            from repro.kernel.filesystem import O_RDONLY, O_WRONLY, O_APPEND
            from repro.kernel.passwd import parse_passwd

            opened = yield from libc.open("/etc/passwd", O_RDONLY)
            data = (yield from libc.read(opened.value, 8192)).value
            yield from libc.close(opened.value)
            entries = parse_passwd(data.decode())
            worker_uid = next(e.uid for e in entries if e.name == "www-data")
            log_fd = (yield from libc.open("/var/log/httpd/error_log", O_WRONLY | O_APPEND)).value

            # Marker call right before the corruption so both builds share the
            # same pre-corruption round count.
            yield from libc.nanosleep(0)

            # The attack: the same concrete value lands in both variants.
            corrupted = 0

            decisions = []
            for _ in range(user_space_uses):
                if use_detection_calls:
                    is_root = (yield from libc.cc_eq(corrupted, codec.root)).value
                else:
                    is_root = corrupted == codec.root
                decisions.append(bool(is_root))
                # Application work that does not expose the decision to the
                # kernel: the divergence stays internal.
                yield from libc.write(log_fd, "request handled\n")

            yield from libc.seteuid(corrupted)
            yield from libc.close(log_fd)
            yield from libc.exit(0)

        return program()

    return factory


def _latency_from_result(result) -> int | None:
    alarm = result.first_alarm()
    if alarm is None or alarm.lockstep_index is None:
        return None
    # Rounds before the corruption marker are identical in both builds: open,
    # read, close, open(log), nanosleep = 5 rounds.
    pre_corruption_rounds = 5
    return alarm.lockstep_index - pre_corruption_rounds


def run_detection_latency(user_space_uses: int = 5) -> DetectionLatencyResult:
    """Run ablation 1: both builds interleaved on one engine."""
    sessions = [
        build_session(
            UID_DIVERSITY_SPEC,
            build_standard_host(),
            _latency_probe_factory(
                use_detection_calls=use_detection_calls, user_space_uses=user_space_uses
            ),
            name=f"ablation1-{'with' if use_detection_calls else 'without'}",
        )
        for use_detection_calls in (True, False)
    ]
    engine_result = run_sessions(sessions, name="ablation1")
    with_calls, without_calls = (entry.result for entry in engine_result.sessions)
    return DetectionLatencyResult(
        with_detection_calls=_latency_from_result(with_calls),
        without_detection_calls=_latency_from_result(without_calls),
        user_space_uses=user_space_uses,
    )


# ---------------------------------------------------------------------------
# Ablation 2: the reexpression mask
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class MaskAblationResult:
    """Consequences of the 31-bit vs 32-bit reexpression masks."""

    full_flip_breaks_normal_operation: bool
    full_flip_alarms: int
    paper_mask_serves_normally: bool
    paper_mask_high_bit_blind_spot: bool
    full_flip_closes_blind_spot: bool

    def section(self) -> ReportKeyValues:
        """This ablation's comparison as a report section."""
        return ReportKeyValues(
            title="Ablation 2: reexpression mask (0x7FFFFFFF vs 0xFFFFFFFF)",
            pairs=(
                (
                    "XOR 0xFFFFFFFF variant fails on a benign workload (kernel rejects "
                    "sign-bit UIDs)",
                    str(self.full_flip_breaks_normal_operation),
                ),
                ("alarms raised by the full-flip configuration", str(self.full_flip_alarms)),
                (
                    "XOR 0x7FFFFFFF variant serves the benign workload",
                    str(self.paper_mask_serves_normally),
                ),
                (
                    "XOR 0x7FFFFFFF cannot detect a corruption confined to the sign bit",
                    str(self.paper_mask_high_bit_blind_spot),
                ),
                (
                    "XOR 0xFFFFFFFF would detect that corruption (analytically)",
                    str(self.full_flip_closes_blind_spot),
                ),
            ),
        )


def run_mask_ablation(requests: int = 4) -> MaskAblationResult:
    """Run ablation 2."""
    workload = WebBenchWorkload(total_requests=requests)

    (paper_measurement, paper_result), (full_measurement, full_result) = drive_nvariant_many(
        [
            (workload, UID_DIVERSITY_SPEC.with_name("mask-paper")),
            (
                workload,
                SystemSpec(name="mask-full-flip", variations=(VariationSpec("uid-full-flip"),)),
            ),
        ]
    )

    # Analytical blind-spot check: corrupt only the sign bit with the same
    # concrete change in both variants and ask whether the decoded values
    # differ (Section 2.3's detection rule).
    paper_variation = UIDVariation()
    full_variation = FullFlipUIDVariation()

    def detects_sign_bit_overwrite(variation) -> bool:
        for uid in sample_domain(bits=31, count=64):
            post = [variation.encode(i, uid) | 0x80000000 for i in range(2)]
            decoded = [variation.decode(i, value) for i, value in enumerate(post)]
            if decoded[0] != decoded[1]:
                return True
        return False

    return MaskAblationResult(
        full_flip_breaks_normal_operation=not full_measurement.completed_ok
        or full_result.attack_detected,
        full_flip_alarms=len(full_result.alarms),
        paper_mask_serves_normally=paper_measurement.completed_ok
        and not paper_result.attack_detected,
        paper_mask_high_bit_blind_spot=not detects_sign_bit_overwrite(paper_variation),
        full_flip_closes_blind_spot=detects_sign_bit_overwrite(full_variation),
    )


# ---------------------------------------------------------------------------
# Ablation 3: unshared files vs in-process reexpression
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class ExternalDataAblationResult:
    """Unshared files vs embedding the reexpression function in the process."""

    unshared_files_detects_injection: bool
    in_process_reexpression_detects_injection: bool

    def section(self) -> ReportKeyValues:
        """This ablation's comparison as a report section."""
        return ReportKeyValues(
            title="Ablation 3: unshared files vs in-process reexpression",
            pairs=(
                (
                    "injected UID detected when external data comes from unshared files",
                    str(self.unshared_files_detects_injection),
                ),
                (
                    "injected UID detected when the process reexpresses external data itself",
                    str(self.in_process_reexpression_detects_injection),
                ),
            ),
        )


def run_external_data_ablation() -> ExternalDataAblationResult:
    """Run ablation 3.

    Both cases model an attacker who has corrupted the *semantic* UID the
    server is about to use (e.g. by overwriting it before it is encoded).  If
    the running process applies ``R_i`` itself, it faithfully reexpresses the
    attacker's value and the target interpreters receive equivalent data --
    no detection.  When the only diversified source of trusted UIDs is the
    per-variant file, the attacker's single concrete value cannot be valid in
    both variants.
    """
    variation = UIDVariation()
    injected_semantic_uid = 0  # the attacker wants root

    # In-process reexpression: each variant encodes the attacker's value.
    decoded_in_process = {
        variation.decode(i, variation.encode(i, injected_semantic_uid)) for i in range(2)
    }
    in_process_detected = len(decoded_in_process) > 1

    # Unshared files: the attacker's value reaches both variants as the same
    # concrete bytes (input is replicated); decoding diverges.
    decoded_unshared = {variation.decode(i, injected_semantic_uid) for i in range(2)}
    unshared_detected = len(decoded_unshared) > 1

    return ExternalDataAblationResult(
        unshared_files_detects_injection=unshared_detected,
        in_process_reexpression_detects_injection=in_process_detected,
    )


@dataclasses.dataclass
class AblationSuiteResult:
    """All three ablations bundled for the benchmark harness."""

    detection_latency: DetectionLatencyResult
    mask: MaskAblationResult
    external_data: ExternalDataAblationResult

    def claim_results(self) -> dict[str, bool]:
        """The design-choice justifications, checked against the ablations."""
        return {
            "detection syscalls detect strictly earlier than syscall-boundary "
            "monitoring": self.detection_latency.detects_strictly_earlier,
            "the paper's 31-bit mask serves the benign workload": (
                self.mask.paper_mask_serves_normally
            ),
            "the full 32-bit flip breaks normal operation": (
                self.mask.full_flip_breaks_normal_operation
            ),
            "the 31-bit mask has the documented sign-bit blind spot": (
                self.mask.paper_mask_high_bit_blind_spot
            ),
            "the full flip would close the blind spot (analytically)": (
                self.mask.full_flip_closes_blind_spot
            ),
            "unshared files close the in-process reexpression bypass": (
                self.external_data.unshared_files_detects_injection
                and not self.external_data.in_process_reexpression_detects_injection
            ),
        }

    def to_report(self) -> ExperimentReport:
        """All three ablations as one shared experiment report."""
        return ExperimentReport(
            title="Design-choice ablations",
            sections=(
                self.detection_latency.section(),
                self.mask.section(),
                self.external_data.section(),
            ),
            claims=self.claim_results(),
            result=self,
        )


def run(*, user_space_uses: int = 5, requests: int = 4) -> AblationSuiteResult:
    """Run all ablations."""
    return AblationSuiteResult(
        detection_latency=run_detection_latency(user_space_uses),
        mask=run_mask_ablation(requests),
        external_data=run_external_data_ablation(),
    )


def experiment(*, user_space_uses: int = 5, requests: int = 4) -> ExperimentReport:
    """Registry entry point: run the suite, return the shared report."""
    return run(user_space_uses=user_space_uses, requests=requests).to_report()
