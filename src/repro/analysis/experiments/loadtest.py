"""Experiment: open-loop overload -- arrivals x admission x N, plus migration.

The paper's servers live behind real traffic, and real traffic is open
loop: requests arrive on their own schedule whether the N-variant system
keeps up or not.  This experiment sweeps seeded Poisson arrival rates from
half the calibrated service rate to several times it, across every
registered admission policy and variant count, on both campaign backends,
and checks that overload degrades *gracefully*:

* the accept-all control group never sheds (its queue, and its tail, absorb
  the whole overload);
* every shedding policy's shed fraction is non-decreasing in offered load,
  and positive once the offered rate clearly exceeds capacity;
* under overload, bounded-queue admission keeps the admitted requests' p99
  sojourn at or below the accept-all tail -- shedding buys latency;
* no benign request ever raises an alarm, and every admitted benign request
  is accounted for (completed, evicted, or aborted -- never lost);
* the virtual-time and forked process backends produce byte-identical cell
  results under the shared seed.

A **migration parity** pair rides along: the same seeded keyed-UID serving
run executed straight and with a checkpoint/restore hand-off at a mid-run
burst boundary must serve byte-identical responses, preserve the drawn
keyed secrets, and reach the same detection outcomes for the trailing
attack suite -- moving a session between engines is invisible to both
clients and the monitor.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from repro.api.experiments import ExperimentReport, ReportKeyValues, ReportTable
from repro.api.spec import SystemSpec, keyed_uid_spec, uid_orbit_spec
from repro.engine.procpool import ProcessJob, run_process_jobs
from repro.load.driver import (
    DEFAULT_SEED,
    LOADTEST_RUNNER,
    run_loadtest,
    run_loadtest_payload,
)

#: Execution tiers the experiment accepts (``"both"`` expands to the pair).
BACKEND_CHOICES = ("virtual", "process", "both")

#: Offered-load multipliers (of the calibrated service rate), in sweep order.
LOAD_MULTIPLIERS = (0.5, 1.0, 2.0, 4.0)

#: The admission policies swept: display label -> (kind, parameter builder).
#: ``accept-all`` is the control group; the rest shed.
POLICY_LABELS = ("accept-all", "bounded-oldest", "bounded-newest", "token-bucket")

#: Multipliers at which a shedding policy MUST shed (clearly past capacity).
OVERLOAD_THRESHOLD = 2.0


def _policy_config(label: str, capacity: int, service_rate: float) -> tuple[str, dict]:
    if label == "accept-all":
        return "accept-all", {}
    if label == "bounded-oldest":
        return "bounded-queue", {"capacity": capacity, "drop": "oldest"}
    if label == "bounded-newest":
        return "bounded-queue", {"capacity": capacity, "drop": "newest"}
    if label == "token-bucket":
        return "token-bucket", {"rate": service_rate, "burst": float(capacity)}
    raise ValueError(f"unknown policy label {label!r}")


def _resolve_backends(backend: str) -> tuple[str, ...]:
    if backend not in BACKEND_CHOICES:
        raise ValueError(
            f"backend must be one of {', '.join(BACKEND_CHOICES)}, got {backend!r}"
        )
    return ("virtual", "process") if backend == "both" else (backend,)


#: The to_dict fields a migrated run must reproduce exactly.  ``bursts``/
#: ``rounds``/``end_tick`` legitimately differ by the restart-vs-restore
#: bookkeeping at the hand-off boundary; everything observable must not.
MIGRATION_PARITY_FIELDS = (
    "response_digest",
    "secret_digest",
    "attack_outcomes",
    "alarms",
    "completed",
    "offered",
    "admitted",
    "shed",
    "latency",
)


@dataclasses.dataclass
class LoadTestResult:
    """The sweep grid, the calibration point, the migration pair, the claims."""

    backends: tuple[str, ...]
    multipliers: tuple[float, ...]
    #: Calibrated service rate in requests per kilotick (from the low-load cell).
    service_rate: float
    capacity: int
    variant_counts: tuple[int, ...]
    #: ``(backend, spec name, policy label, multiplier) -> LoadRunResult.to_dict()``.
    cells: dict[tuple[str, str, str, float], dict[str, Any]]
    #: Straight and migrated runs of the parity pair (``None`` when skipped).
    migration_base: Optional[dict[str, Any]] = None
    migration_moved: Optional[dict[str, Any]] = None

    def cell(self, backend: str, spec: str, policy: str, mult: float) -> dict[str, Any]:
        return self.cells[(backend, spec, policy, mult)]

    def _spec_names(self) -> tuple[str, ...]:
        return tuple(uid_orbit_spec(n).name for n in self.variant_counts)

    @staticmethod
    def _shed_fraction(cell: dict[str, Any]) -> float:
        return cell["shed"] / cell["offered"] if cell["offered"] else 0.0

    # -- claims ------------------------------------------------------------------

    def claim_results(self) -> dict[str, bool]:
        """The graceful-degradation and migration-parity claims."""
        claims: dict[str, bool] = {}
        shedding = [label for label in POLICY_LABELS if label != "accept-all"]
        top = self.multipliers[-1]
        for backend in self.backends:
            grid = {
                (spec, policy, mult): self.cell(backend, spec, policy, mult)
                for spec in self._spec_names()
                for policy in POLICY_LABELS
                for mult in self.multipliers
            }
            claims[f"{backend}: accept-all sheds nothing at any offered load"] = all(
                cell["shed"] == 0
                for (_, policy, _), cell in grid.items()
                if policy == "accept-all"
            )
            claims[
                f"{backend}: shed fraction is non-decreasing in offered load "
                "for every shedding policy"
            ] = all(
                self._shed_fraction(grid[(spec, policy, lo)])
                <= self._shed_fraction(grid[(spec, policy, hi)])
                for spec in self._spec_names()
                for policy in shedding
                for lo, hi in zip(self.multipliers, self.multipliers[1:])
            )
            claims[
                f"{backend}: every shedding policy sheds once offered load "
                f"reaches {OVERLOAD_THRESHOLD:g}x capacity"
            ] = all(
                grid[(spec, policy, mult)]["shed"] > 0
                for spec in self._spec_names()
                for policy in shedding
                for mult in self.multipliers
                if mult >= OVERLOAD_THRESHOLD
            )
            claims[
                f"{backend}: bounded-queue admission keeps the admitted p99 at or "
                "below accept-all's under overload"
            ] = all(
                (grid[(spec, policy, top)]["latency"]["p99"] or 0)
                <= (grid[(spec, "accept-all", top)]["latency"]["p99"] or 0)
                for spec in self._spec_names()
                for policy in ("bounded-oldest", "bounded-newest")
            )
            claims[f"{backend}: zero benign alarms across the whole sweep"] = all(
                cell["alarms"] == 0 for cell in grid.values()
            )
            claims[
                f"{backend}: every admitted benign request is accounted for "
                "(completed + evicted + aborted == admitted)"
            ] = all(
                cell["completed"] + cell["evicted"] + cell["aborted"]
                == cell["admitted"]
                for cell in grid.values()
            )
        if len(self.backends) > 1:
            first, *rest = self.backends
            claims[
                "the campaign backends reproduce every sweep cell byte for byte"
            ] = all(
                self.cell(backend, spec, policy, mult)
                == self.cell(first, spec, policy, mult)
                for backend in rest
                for spec in self._spec_names()
                for policy in POLICY_LABELS
                for mult in self.multipliers
            )
        if self.migration_base is not None and self.migration_moved is not None:
            claims["migration: the hand-off actually happened mid-run"] = bool(
                self.migration_moved["migrated"]
            ) and not self.migration_base["migrated"]
            for field in MIGRATION_PARITY_FIELDS:
                claims[
                    f"migration: {field} is identical with and without the hand-off"
                ] = self.migration_base[field] == self.migration_moved[field]
        return claims

    @property
    def all_claims_hold(self) -> bool:
        """True when every overload and migration claim holds."""
        return all(self.claim_results().values())

    # -- report ------------------------------------------------------------------

    def to_report(self) -> ExperimentReport:
        """The sweep table, the calibration point and the claims."""
        reference = self.backends[0]
        rows = []
        for spec in self._spec_names():
            for policy in POLICY_LABELS:
                for mult in self.multipliers:
                    cell = self.cell(reference, spec, policy, mult)
                    latency = cell["latency"]
                    rows.append(
                        (
                            spec,
                            policy,
                            f"{mult:g}x",
                            f"{cell['rate']:.2f}",
                            f"{cell['shed']}/{cell['offered']}",
                            cell["completed"],
                            cell["queue_high_water"],
                            latency["p50"] if latency["p50"] is not None else "-",
                            latency["p99"] if latency["p99"] is not None else "-",
                            latency["p999"] if latency["p999"] is not None else "-",
                        )
                    )
        sections: list = [
            ReportTable(
                title=f"Open-loop sweep ({reference} backend; rates in req/ktick)",
                headers=(
                    "configuration",
                    "admission",
                    "load",
                    "rate",
                    "shed/offered",
                    "done",
                    "q-high",
                    "p50",
                    "p99",
                    "p999",
                ),
                rows=tuple(rows),
            )
        ]
        pairs = [
            ("calibrated service rate (req/ktick)", f"{self.service_rate:.2f}"),
            ("bounded-queue capacity", str(self.capacity)),
            ("offered-load multipliers", ", ".join(f"{m:g}x" for m in self.multipliers)),
        ]
        if self.migration_base is not None and self.migration_moved is not None:
            pairs.extend(
                (
                    ("migration spec", self.migration_base["spec"]),
                    (
                        "migration responses identical",
                        str(
                            self.migration_base["response_digest"]
                            == self.migration_moved["response_digest"]
                        ),
                    ),
                    (
                        "migration secrets preserved",
                        str(
                            self.migration_base["secret_digest"]
                            == self.migration_moved["secret_digest"]
                        ),
                    ),
                )
            )
        sections.append(ReportKeyValues(title="Calibration and migration", pairs=tuple(pairs)))
        telemetry: dict = {
            "backends": list(self.backends),
            "sweep_cells_per_backend": len(self._spec_names())
            * len(POLICY_LABELS)
            * len(self.multipliers),
            "service_rate": round(self.service_rate, 3),
            "total_rounds": sum(cell["rounds"] for cell in self.cells.values()),
            "total_virtual_elapsed": sum(
                cell["virtual_elapsed"] for cell in self.cells.values()
            ),
        }
        return ExperimentReport(
            title="Open-loop load: arrivals x admission x N, with session migration",
            sections=tuple(sections),
            claims=self.claim_results(),
            telemetry=telemetry,
            result=self,
        )


def _cell_payload(
    spec: SystemSpec,
    *,
    policy_label: str,
    capacity: int,
    service_rate: float,
    mult: float,
    requests: int,
    seed: int,
    name: str,
) -> dict[str, Any]:
    kind, params = _policy_config(policy_label, capacity, service_rate)
    return {
        "spec": spec.to_dict(),
        "app": "httpd",
        "arrival": "poisson",
        "rate": mult * service_rate,
        "requests": requests,
        "admission": kind,
        "admission_params": params,
        "seed": seed,
        "name": name,
    }


def run(
    *,
    backend: str = "both",
    workers: int = 4,
    requests: int = 24,
    rate_steps: int = 4,
    max_variants: int = 3,
    capacity: int = 3,
    seed: int = DEFAULT_SEED,
    migration: bool = True,
) -> LoadTestResult:
    """Calibrate, sweep, and (optionally) run the migration parity pair.

    A constant-rate low-load cell calibrates the service rate; the sweep
    offers ``rate_steps`` multiples of it (from :data:`LOAD_MULTIPLIERS`)
    through every admission policy at N in ``2..max_variants``, on each
    selected ``backend``.  ``requests`` is the benign stream length per
    cell, ``capacity`` the bounded-queue depth (and token-bucket burst), and
    ``seed`` the root every cell's determinism flows from.
    """
    if not 1 <= rate_steps <= len(LOAD_MULTIPLIERS):
        raise ValueError(
            f"rate_steps must be in 1..{len(LOAD_MULTIPLIERS)}, got {rate_steps}"
        )
    if max_variants < 2:
        raise ValueError(f"max_variants must be >= 2, got {max_variants}")
    backends = _resolve_backends(backend)
    multipliers = LOAD_MULTIPLIERS[:rate_steps]
    variant_counts = tuple(range(2, max_variants + 1))

    # Calibration: constant trickle arrivals, no queueing to speak of -- the
    # mean sojourn is the intrinsic per-request service time.
    calibration = run_loadtest(
        uid_orbit_spec(2),
        app="httpd",
        arrival="constant",
        rate=1.0,
        requests=max(4, min(requests, 8)),
        seed=seed,
        name="loadtest-calibration",
    )
    service_rate = 1000.0 / calibration.latency.mean

    payloads = {}
    for n in variant_counts:
        spec = uid_orbit_spec(n)
        for label in POLICY_LABELS:
            for mult in multipliers:
                key = (spec.name, label, mult)
                payloads[key] = _cell_payload(
                    spec,
                    policy_label=label,
                    capacity=capacity,
                    service_rate=service_rate,
                    mult=mult,
                    requests=requests,
                    seed=seed,
                    name=f"loadtest-{n}-{label}-{mult:g}x",
                )

    cells: dict[tuple[str, str, str, float], dict[str, Any]] = {}
    ordered = sorted(payloads)
    for tier in backends:
        if tier == "virtual":
            for key in ordered:
                cells[(tier, *key)] = run_loadtest_payload(payloads[key])["value"]
        else:
            jobs = [
                ProcessJob(
                    name=payloads[key]["name"], runner=LOADTEST_RUNNER, payload=payloads[key]
                )
                for key in ordered
            ]
            campaign = run_process_jobs(jobs, workers=workers)
            for key, job_result in zip(ordered, campaign.jobs):
                cells[(tier, *key)] = job_result.value

    migration_base = migration_moved = None
    if migration:
        parity_spec = keyed_uid_spec(2, key_bits=8)
        parity_kwargs: dict[str, Any] = dict(
            app="httpd",
            arrival="poisson",
            rate=service_rate,
            requests=max(6, min(requests, 10)),
            seed=seed,
            attacks=("uid-overwrite", "pointer-overwrite"),
        )
        migration_base = run_loadtest(
            parity_spec, name="loadtest-straight", **parity_kwargs
        ).to_dict()
        migration_moved = run_loadtest(
            parity_spec,
            name="loadtest-migrated",
            migrate_after=max(2, parity_kwargs["requests"] // 2),
            **parity_kwargs,
        ).to_dict()

    return LoadTestResult(
        backends=backends,
        multipliers=multipliers,
        service_rate=service_rate,
        capacity=capacity,
        variant_counts=variant_counts,
        cells=cells,
        migration_base=migration_base,
        migration_moved=migration_moved,
    )


def experiment(
    *,
    backend: str = "both",
    workers: int = 4,
    requests: int = 24,
    rate_steps: int = 4,
    max_variants: int = 3,
    capacity: int = 3,
    seed: int = DEFAULT_SEED,
) -> ExperimentReport:
    """Registry entry point: run the open-loop sweep, return the report."""
    return run(
        backend=backend,
        workers=workers,
        requests=requests,
        rate_steps=rate_steps,
        max_variants=max_variants,
        capacity=capacity,
        seed=seed,
    ).to_report()
