"""Experiment: reproduce Table 3 (performance of the four configurations).

Runs the WebBench-style static workload through the four configurations the
paper measures:

1. unmodified server, single process (baseline);
2. UID-transformed server, single process;
3. 2-variant system with address-space partitioning (untransformed server);
4. 2-variant system with address partitioning + the UID variation
   (transformed server).

Each configuration's run produces a :class:`WorkloadMeasurement` (real counts
from the simulation); the virtual-time performance model converts those into
throughput and latency under the unsaturated (1 client engine) and saturated
(15 engines across 3 machines) load levels.  The paper's absolute numbers
come from physical hardware; what this experiment reproduces is the shape:
negligible cost for the transformation alone, roughly halved throughput under
saturation for two variants, a modest unsaturated penalty, and a small
additional cost for the UID variation on top of the 2-variant baseline.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.perfmodel import PerfPoint, PerformanceModel, percent_change
from repro.api.experiments import ExperimentReport, ReportKeyValues, ReportTable
from repro.api.spec import ADDRESS_PARTITIONING_SPEC, ADDRESS_UID_SPEC
from repro.apps.clients.webbench import (
    SATURATED_WORKLOAD,
    UNSATURATED_WORKLOAD,
    WebBenchWorkload,
    WorkloadMeasurement,
    drive_nvariant_many,
    drive_standalone,
)

#: Paper values for side-by-side comparison: configuration -> load -> metrics.
PAPER_TABLE3 = {
    "1-unmodified": {"unsaturated": (1010.0, 5.81), "saturated": (5420.0, 16.32)},
    "2-transformed": {"unsaturated": (973.0, 5.81), "saturated": (5372.0, 16.24)},
    "3-2variant-address": {"unsaturated": (887.0, 6.56), "saturated": (2369.0, 37.36)},
    "4-2variant-uid": {"unsaturated": (877.0, 6.65), "saturated": (2262.0, 38.49)},
}

#: Human-readable configuration descriptions (as in the paper's table).
CONFIGURATION_DESCRIPTIONS = {
    "1-unmodified": "Unmodified Apache",
    "2-transformed": "Transformed Apache",
    "3-2variant-address": "2-Variant Address Space",
    "4-2variant-uid": "2-Variant UID",
}


@dataclasses.dataclass
class ConfigurationResult:
    """Measurement and modelled performance for one configuration."""

    key: str
    description: str
    measurement: WorkloadMeasurement
    unsaturated: PerfPoint
    saturated: PerfPoint


@dataclasses.dataclass
class Table3Result:
    """All four configurations plus comparison helpers."""

    configurations: list[ConfigurationResult]

    def by_key(self, key: str) -> ConfigurationResult:
        """Look up one configuration by its key."""
        for configuration in self.configurations:
            if configuration.key == key:
                return configuration
        raise KeyError(key)

    # -- the paper's headline ratios -----------------------------------------------

    def overhead_vs_baseline(self, key: str, *, saturated: bool) -> float:
        """Throughput change (percent) of *key* relative to Configuration 1."""
        baseline = self.by_key("1-unmodified")
        target = self.by_key(key)
        if saturated:
            return percent_change(baseline.saturated.throughput_kbps, target.saturated.throughput_kbps)
        return percent_change(baseline.unsaturated.throughput_kbps, target.unsaturated.throughput_kbps)

    def uid_overhead_vs_2variant(self, *, saturated: bool) -> float:
        """Throughput change of Configuration 4 relative to Configuration 3."""
        baseline = self.by_key("3-2variant-address")
        target = self.by_key("4-2variant-uid")
        if saturated:
            return percent_change(baseline.saturated.throughput_kbps, target.saturated.throughput_kbps)
        return percent_change(baseline.unsaturated.throughput_kbps, target.unsaturated.throughput_kbps)

    def shape_holds(self) -> dict[str, bool]:
        """The qualitative claims of Table 3, checked against our numbers."""
        return {
            "transformation alone is cheap (config 2 within 5% of config 1, saturated)": abs(
                self.overhead_vs_baseline("2-transformed", saturated=True)
            )
            < 5.0,
            "2-variant saturated throughput roughly halves (40-65% drop)": -65.0
            < self.overhead_vs_baseline("3-2variant-address", saturated=True)
            < -40.0,
            "2-variant unsaturated penalty is modest (< 25% drop)": -25.0
            < self.overhead_vs_baseline("3-2variant-address", saturated=False)
            < 0.0,
            "UID variation adds < 10% on top of the 2-variant baseline (saturated)": -10.0
            < self.uid_overhead_vs_2variant(saturated=True)
            <= 0.0,
        }

    def to_report(self) -> ExperimentReport:
        """The reproduced table plus paper comparison as a shared report."""
        rows = []
        for configuration in self.configurations:
            paper = PAPER_TABLE3[configuration.key]
            rows.append(
                (
                    configuration.description,
                    f"{configuration.unsaturated.throughput_kbps:.0f}",
                    f"{configuration.unsaturated.latency_ms:.2f}",
                    f"{configuration.saturated.throughput_kbps:.0f}",
                    f"{configuration.saturated.latency_ms:.2f}",
                    f"{paper['unsaturated'][0]:.0f}/{paper['saturated'][0]:.0f}",
                )
            )
        table = ReportTable(
            title="Table 3. Performance Results (virtual-time model)",
            headers=(
                "Configuration",
                "Unsat KB/s",
                "Unsat ms",
                "Sat KB/s",
                "Sat ms",
                "Paper KB/s (unsat/sat)",
            ),
            rows=tuple(rows),
        )
        overheads = ReportKeyValues(
            title="Relative overheads (throughput vs configuration 1)",
            pairs=(
                (
                    "config2 (unsat / sat)",
                    f"{self.overhead_vs_baseline('2-transformed', saturated=False):+.1f}% / "
                    f"{self.overhead_vs_baseline('2-transformed', saturated=True):+.1f}%",
                ),
                (
                    "config3 (unsat / sat)",
                    f"{self.overhead_vs_baseline('3-2variant-address', saturated=False):+.1f}% / "
                    f"{self.overhead_vs_baseline('3-2variant-address', saturated=True):+.1f}%",
                ),
                (
                    "config4 vs config3 (unsat / sat)",
                    f"{self.uid_overhead_vs_2variant(saturated=False):+.1f}% / "
                    f"{self.uid_overhead_vs_2variant(saturated=True):+.1f}%",
                ),
            ),
        )
        telemetry = {
            f"{configuration.key}_requests": configuration.measurement.requests_completed
            for configuration in self.configurations
        }
        return ExperimentReport(
            title="Table 3: performance of the four configurations",
            sections=(table, overheads),
            claims=self.shape_holds(),
            telemetry=telemetry,
            result=self,
        )


def run(
    *,
    requests: int = 40,
    workload: WebBenchWorkload | None = None,
    model: PerformanceModel | None = None,
) -> Table3Result:
    """Run all four configurations and model both load levels."""
    model = model if model is not None else PerformanceModel()
    base_workload = workload if workload is not None else WebBenchWorkload(
        total_requests=requests,
        client_engines=UNSATURATED_WORKLOAD.client_engines,
        client_machines=UNSATURATED_WORKLOAD.client_machines,
    )
    saturated_clients = SATURATED_WORKLOAD.concurrent_clients

    measurements: list[tuple[str, WorkloadMeasurement]] = []
    measurements.append(
        ("1-unmodified", drive_standalone(base_workload, transformed=False, configuration="1-unmodified"))
    )
    measurements.append(
        ("2-transformed", drive_standalone(base_workload, transformed=True, configuration="2-transformed"))
    )
    # The two redundant configurations run concurrently on the engine; each
    # owns its host, so the interleaving leaves the measurements untouched.
    (m3, _), (m4, _) = drive_nvariant_many(
        [
            (base_workload, ADDRESS_PARTITIONING_SPEC.with_name("3-2variant-address")),
            (base_workload, ADDRESS_UID_SPEC.with_name("4-2variant-uid")),
        ]
    )
    measurements.append(("3-2variant-address", m3))
    measurements.append(("4-2variant-uid", m4))

    configurations = []
    for key, measurement in measurements:
        configurations.append(
            ConfigurationResult(
                key=key,
                description=CONFIGURATION_DESCRIPTIONS[key],
                measurement=measurement,
                unsaturated=model.unsaturated(measurement),
                saturated=model.saturated(measurement, clients=saturated_clients),
            )
        )
    return Table3Result(configurations=configurations)


def experiment(*, requests: int = 40) -> ExperimentReport:
    """Registry entry point: run the table, return the shared report."""
    return run(requests=requests).to_report()
