"""Experiment: N-scaling sweep of both orbit families (detection + cost).

The paper deploys two variants; the orbit generalisation (PR 3 for UIDs,
PR 5 for addresses) makes variant count a free axis.  This experiment sweeps
``uid_orbit_spec(n)`` and ``address_orbit_spec(n)`` over a range of N and
reports, per N:

* the detection matrix outcome of every standard attack in the family
  (the security guarantee must hold at every N -- more variants can only
  add observers, never remove one);
* the measured workload cost of running N variants in lockstep (total
  syscalls, per-request syscalls) and the modelled saturated throughput,
  which is the price the extra redundancy pays.

Campaigns run through the engine scheduler (one campaign per family, all N
configurations as cells) and the benign workloads run concurrently on one
engine via :func:`~repro.apps.clients.webbench.drive_nvariant_many`, so the
sweep costs one pass, not one run per N.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.experiments.detection import OUTSIDE_GUARANTEE
from repro.analysis.perfmodel import PerformanceModel
from repro.api.campaign import CampaignReport, run_campaign
from repro.api.experiments import ExperimentReport, ReportKeyValues, ReportTable
from repro.api.spec import SystemSpec, address_orbit_spec, uid_orbit_spec
from repro.apps.clients.webbench import WebBenchWorkload, WorkloadMeasurement, drive_nvariant_many
from repro.attacks.outcomes import OutcomeKind


@dataclasses.dataclass
class NScalingPoint:
    """One N of the sweep: detection outcomes and workload cost."""

    num_variants: int
    uid_spec: SystemSpec
    address_spec: SystemSpec
    uid_outcomes: list
    address_outcomes: list
    uid_measurement: WorkloadMeasurement
    address_measurement: WorkloadMeasurement
    saturated_throughput: float

    @property
    def uid_guarantee_holds(self) -> bool:
        """Every in-guarantee UID attack detected at this N."""
        guaranteed = [o for o in self.uid_outcomes if o.attack not in OUTSIDE_GUARANTEE]
        return bool(guaranteed) and all(
            o.kind is OutcomeKind.DETECTED for o in guaranteed
        )

    @property
    def address_guarantee_holds(self) -> bool:
        """Every address injection detected at this N."""
        return bool(self.address_outcomes) and all(
            o.detected for o in self.address_outcomes
        )

    @property
    def lockstep_syscalls(self) -> int:
        """Total syscalls of the benign workload across both family runs."""
        return self.uid_measurement.syscalls_total + self.address_measurement.syscalls_total


@dataclasses.dataclass
class NScalingResult:
    """The whole sweep plus the claims it must satisfy."""

    points: list[NScalingPoint]
    uid_report: CampaignReport
    address_report: CampaignReport

    def claim_results(self) -> dict[str, bool]:
        """Detection must survive every N; cost must grow with N."""
        syscall_costs = [p.lockstep_syscalls for p in self.points]
        throughputs = [p.saturated_throughput for p in self.points]
        return {
            "every N in the sweep detects all in-guarantee UID attacks": all(
                p.uid_guarantee_holds for p in self.points
            ),
            "every N in the sweep detects every address injection": all(
                p.address_guarantee_holds for p in self.points
            ),
            "benign workloads stay clean at every N (no false alarms)": all(
                p.uid_measurement.completed_ok and p.address_measurement.completed_ok
                for p in self.points
            ),
            "lockstep syscall cost grows with N": all(
                earlier < later for earlier, later in zip(syscall_costs, syscall_costs[1:])
            ),
            "modelled saturated throughput never improves as N grows": all(
                earlier >= later for earlier, later in zip(throughputs, throughputs[1:])
            ),
        }

    @property
    def all_claims_hold(self) -> bool:
        """True when detection and cost scale as claimed."""
        return all(self.claim_results().values())

    def to_report(self) -> ExperimentReport:
        """The sweep as a shared experiment report."""
        rows = []
        for point in self.points:
            rows.append(
                (
                    str(point.num_variants),
                    "yes" if point.uid_guarantee_holds else "NO",
                    "yes" if point.address_guarantee_holds else "NO",
                    str(point.lockstep_syscalls),
                    f"{point.uid_measurement.per_request_syscalls():.1f}",
                    f"{point.saturated_throughput:.0f}",
                )
            )
        table = ReportTable(
            title="N-scaling: detection and cost of both orbit families vs variant count",
            headers=(
                "N",
                "UID guarantee",
                "address guarantee",
                "benign syscalls",
                "syscalls/request (uid)",
                "saturated kbps (model)",
            ),
            rows=tuple(rows),
        )
        summary = ReportKeyValues(
            title="Sweep",
            pairs=(
                ("variant counts", ", ".join(str(p.num_variants) for p in self.points)),
                ("uid campaign cells", str(len(self.uid_report.outcomes))),
                ("address campaign cells", str(len(self.address_report.outcomes))),
            ),
        )
        telemetry = {}
        if self.uid_report.execution is not None:
            telemetry["campaign_parallelism"] = self.uid_report.execution.parallelism
        return ExperimentReport(
            title="N-scaling sweep of the orbit re-expression families",
            sections=(table, summary),
            claims=self.claim_results(),
            telemetry=telemetry,
            result=self,
        )


def run(
    *,
    min_variants: int = 2,
    max_variants: int = 6,
    requests: int = 12,
    parallelism: int = 4,
) -> NScalingResult:
    """Sweep both orbit families over ``[min_variants, max_variants]``."""
    from repro.attacks.memory_attacks import standard_address_attacks
    from repro.attacks.uid_attacks import standard_uid_attacks

    if not 2 <= min_variants <= max_variants:
        raise ValueError(
            f"need 2 <= min_variants <= max_variants, got {min_variants}..{max_variants}"
        )
    counts = list(range(min_variants, max_variants + 1))
    uid_specs = [uid_orbit_spec(n) for n in counts]
    address_specs = [address_orbit_spec(n) for n in counts]

    uid_report = run_campaign(uid_specs, standard_uid_attacks(), parallelism=parallelism)
    address_report = run_campaign(
        address_specs, standard_address_attacks(), parallelism=parallelism
    )

    workload = WebBenchWorkload(total_requests=requests)
    jobs = [(workload, spec) for spec in uid_specs] + [
        (workload, spec) for spec in address_specs
    ]
    measurements = [measurement for measurement, _ in drive_nvariant_many(jobs)]
    uid_measurements = measurements[: len(counts)]
    address_measurements = measurements[len(counts):]

    model = PerformanceModel()
    points = []
    for index, n in enumerate(counts):
        address_measurement = address_measurements[index]
        points.append(
            NScalingPoint(
                num_variants=n,
                uid_spec=uid_specs[index],
                address_spec=address_specs[index],
                uid_outcomes=uid_report.by_configuration(uid_specs[index].name),
                address_outcomes=address_report.by_configuration(address_specs[index].name),
                uid_measurement=uid_measurements[index],
                address_measurement=address_measurement,
                saturated_throughput=model.saturated(address_measurement).throughput_kbps,
            )
        )
    return NScalingResult(points=points, uid_report=uid_report, address_report=address_report)


def experiment(
    *,
    min_variants: int = 2,
    max_variants: int = 6,
    requests: int = 12,
    parallelism: int = 4,
) -> ExperimentReport:
    """Registry entry point: run the sweep, return the shared report."""
    return run(
        min_variants=min_variants,
        max_variants=max_variants,
        requests=requests,
        parallelism=parallelism,
    ).to_report()
