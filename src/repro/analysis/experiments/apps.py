"""Experiment: the second-workload generalisation (apps x backends).

The paper's detection argument never mentions HTTP: the guarantees rest on
data diversity at the syscall boundary, so they must survive swapping the
protected application.  This experiment makes that claim measurable.  Every
standard attack class (the Table 2/3 suites) runs against both registered
serving apps -- the mini-httpd and the mini-ftpd -- under the full stacked
diversity configuration (``fd-orbit`` + ``address-orbit`` + ``uid-orbit``)
at N in {2, 3}, on both campaign backends (the in-process virtual-time
scheduler and the forked OS worker pool), and the resulting matrices are
checked three ways:

* **the guarantee**: every in-guarantee attack is detected at both variant
  counts, the bit-granular corruptions stay (as documented) outside it, and
  the unprotected single process is still compromised;
* **app independence**: the httpd and ftpd matrices agree cell for cell;
* **backend independence**: the virtual and process matrices agree cell for
  cell.

A benign workload sweep (webbench for the httpd, ftpbench for the ftpd)
rides along to show both servers complete their request mixes alarm-free
under the same stacked diversity, and the monitor's per-syscall
``alarm_breakdown`` for the attack cells is surfaced as report telemetry,
so ``--json`` consumers see *which* interposed syscall raised each alarm.
"""

from __future__ import annotations

import dataclasses

from repro.api.campaign import CampaignReport, prepare_attack, run_campaign, standard_attacks
from repro.api.experiments import ExperimentReport, ReportTable
from repro.api.spec import SINGLE_PROCESS_SPEC, SystemSpec
from repro.attacks.outcomes import OutcomeKind

#: The apps the generalisation claim quantifies over.
APP_NAMES = ("httpd", "ftpd")

#: The variant counts the stacked diversity configuration is swept at.
VARIANT_COUNTS = (2, 3)

#: Attacks whose detection the paper explicitly does NOT promise (the same
#: bit-granular exclusions the detection-matrix experiment documents).
OUTSIDE_GUARANTEE = frozenset({"low-bit-flip", "high-bit-flip"})

#: Execution tiers the experiment accepts (``"both"`` expands to the pair).
BACKEND_CHOICES = ("virtual", "process", "both")


def diversity_spec(num_variants: int) -> SystemSpec:
    """The fully stacked diversity system at N variants.

    All three re-expression families at once -- file descriptors, addresses
    and UIDs each partitioned into per-variant orbits -- which is the
    configuration the cross-app claims are stated against.
    """
    return SystemSpec(
        name=f"{num_variants}-variant-fd+address+uid-orbit",
        num_variants=num_variants,
        variations=("fd-orbit", "address-orbit", "uid-orbit"),
        transformed=True,
    )


def _resolve_backends(backend: str) -> tuple[str, ...]:
    if backend not in BACKEND_CHOICES:
        raise ValueError(
            f"backend must be one of {', '.join(BACKEND_CHOICES)}, got {backend!r}"
        )
    return ("virtual", "process") if backend == "both" else (backend,)


def _alarm_breakdown(app: str, spec: SystemSpec) -> dict[str, int]:
    """Per-syscall alarm counts over every standard attack against *spec*."""
    breakdown: dict[str, int] = {}
    for attack in standard_attacks(app):
        cell = prepare_attack(attack, spec)
        session = cell.start()
        while not session.done:
            session.step()
        cell.finish(session)
        for name, count in session.result().monitor.stats.alarm_breakdown.items():
            breakdown[name] = breakdown.get(name, 0) + count
    return dict(sorted(breakdown.items()))


@dataclasses.dataclass
class AppsResult:
    """Both apps' matrices per backend, the workload sweep, the claims."""

    backends: tuple[str, ...]
    specs: tuple[SystemSpec, ...]
    #: ``(app, backend) -> CampaignReport`` for the full attack suite.
    reports: dict[tuple[str, str], CampaignReport]
    #: ``app -> WorkloadMeasurement list`` (standalone, then each N).
    measurements: dict[str, list]
    #: Per-syscall alarm counts, summed over apps, at the N=2 stacked system.
    alarm_breakdown: dict[str, int]

    def matrix(self, app: str, backend: str) -> dict[str, dict[str, str]]:
        """``{attack: {configuration: outcome}}`` for one (app, backend)."""
        return self.reports[(app, backend)].matrix()

    # -- claims ------------------------------------------------------------------

    def claim_results(self) -> dict[str, bool]:
        """The generalisation claims, checked against every matrix."""
        claims: dict[str, bool] = {}
        protected = [spec.name for spec in self.specs if spec.redundant]
        for app in APP_NAMES:
            for backend in self.backends:
                report = self.reports[(app, backend)]
                single = [
                    o
                    for o in report.by_configuration(SINGLE_PROCESS_SPEC.name)
                    if o.attack not in OUTSIDE_GUARANTEE
                ]
                guaranteed = [
                    o
                    for o in report.outcomes
                    if o.configuration in protected and o.attack not in OUTSIDE_GUARANTEE
                ]
                outside = [
                    o
                    for o in report.outcomes
                    if o.configuration in protected and o.attack in OUTSIDE_GUARANTEE
                ]
                claims[
                    f"{app}/{backend}: attacks compromise the unprotected server"
                ] = any(o.kind is OutcomeKind.UNDETECTED_COMPROMISE for o in single)
                claims[
                    f"{app}/{backend}: every in-guarantee attack is detected at "
                    f"N in {{{', '.join(str(s.num_variants) for s in self.specs if s.redundant)}}} "
                    "under the fd+address+uid stack"
                ] = bool(guaranteed) and all(
                    o.kind is OutcomeKind.DETECTED for o in guaranteed
                )
                claims[
                    f"{app}/{backend}: bit-granular corruptions stay outside the guarantee"
                ] = all(o.kind is not OutcomeKind.DETECTED for o in outside)
        for backend in self.backends:
            claims[
                f"{backend}: the detection matrix is app-independent "
                "(httpd and ftpd agree cell for cell)"
            ] = self.matrix("httpd", backend) == self.matrix("ftpd", backend)
        if len(self.backends) > 1:
            first, *rest = self.backends
            for app in APP_NAMES:
                claims[
                    f"{app}: every backend reproduces the same matrix"
                ] = all(
                    self.matrix(app, backend) == self.matrix(app, first)
                    for backend in rest
                )
        for app, measurements in self.measurements.items():
            claims[
                f"{app}: the benign workload completes alarm-free under the stacked diversity"
            ] = bool(measurements) and all(m.completed_ok for m in measurements)
        return claims

    @property
    def all_claims_hold(self) -> bool:
        """True when every generalisation claim holds."""
        return all(self.claim_results().values())

    # -- report ------------------------------------------------------------------

    def to_report(self) -> ExperimentReport:
        """The matrices, the workload sweep and the claims as a shared report."""
        sections = []
        configurations = [spec.name for spec in self.specs]
        reference_backend = self.backends[0]
        for app in APP_NAMES:
            matrix = self.matrix(app, reference_backend)
            sections.append(
                ReportTable(
                    title=f"Detection matrix on {app} ({reference_backend} backend)",
                    headers=(f"{app} attack", *configurations),
                    rows=tuple(
                        (attack, *(matrix[attack].get(c, "-") for c in configurations))
                        for attack in matrix
                    ),
                )
            )
        sections.append(
            ReportTable(
                title="Benign workload sweep under the stacked diversity",
                headers=(
                    "app",
                    "configuration",
                    "completed",
                    "alarms",
                    "syscalls/request",
                    "monitor checks",
                ),
                rows=tuple(
                    (
                        app,
                        m.configuration,
                        f"{m.requests_completed}/{m.requests_sent}",
                        m.alarms,
                        f"{m.per_request_syscalls():.1f}",
                        m.monitor_checks,
                    )
                    for app, measurements in self.measurements.items()
                    for m in measurements
                ),
            )
        )
        telemetry: dict = {
            "backends": list(self.backends),
            "campaign_cells_per_backend": sum(
                len(report.outcomes)
                for (_, backend), report in self.reports.items()
                if backend == self.backends[0]
            ),
            "alarm_breakdown": dict(self.alarm_breakdown),
        }
        execution = self.reports[("ftpd", "virtual")].execution if (
            "virtual" in self.backends
        ) else None
        if execution is not None:
            telemetry["campaign_virtual_elapsed"] = execution.virtual_elapsed
        return ExperimentReport(
            title="Second workload generalisation: detection and throughput, apps x backends",
            sections=tuple(sections),
            claims=self.claim_results(),
            telemetry=telemetry,
            result=self,
        )


def run(*, backend: str = "both", workers: int = 4, requests: int = 16) -> AppsResult:
    """Run the cross-app matrices, the workload sweep and the alarm telemetry.

    ``backend`` selects the execution tiers (``"both"`` runs the virtual-time
    scheduler and the forked worker pool and asserts they agree),
    ``workers`` the campaign worker count on each, and ``requests`` the
    benign request count per workload configuration.
    """
    from repro.apps.clients import ftpbench, webbench

    backends = _resolve_backends(backend)
    specs = (SINGLE_PROCESS_SPEC, *(diversity_spec(n) for n in VARIANT_COUNTS))
    reports: dict[tuple[str, str], CampaignReport] = {}
    for app in APP_NAMES:
        for tier in backends:
            reports[(app, tier)] = run_campaign(
                specs,
                standard_attacks(app),
                backend=tier,
                workers=workers,
            )

    measurements: dict[str, list] = {}
    web_workload = webbench.WebBenchWorkload(total_requests=requests)
    measurements["httpd"] = [
        webbench.drive_standalone(web_workload, configuration="httpd-standalone")
    ]
    for n in VARIANT_COUNTS:
        measurement, _ = webbench.drive_nvariant(web_workload, diversity_spec(n))
        measurements["httpd"].append(measurement)
    ftp_workload = ftpbench.FtpBenchWorkload(total_requests=requests)
    measurements["ftpd"] = [ftpbench.drive_standalone(ftp_workload)]
    for n in VARIANT_COUNTS:
        measurement, _ = ftpbench.drive_nvariant(ftp_workload, diversity_spec(n))
        measurements["ftpd"].append(measurement)

    breakdown: dict[str, int] = {}
    for app in APP_NAMES:
        for name, count in _alarm_breakdown(app, diversity_spec(2)).items():
            breakdown[name] = breakdown.get(name, 0) + count

    return AppsResult(
        backends=backends,
        specs=specs,
        reports=reports,
        measurements=measurements,
        alarm_breakdown=dict(sorted(breakdown.items())),
    )


def experiment(*, backend: str = "both", workers: int = 4, requests: int = 16) -> ExperimentReport:
    """Registry entry point: run the generalisation suite, return the report."""
    return run(backend=backend, workers=workers, requests=requests).to_report()
