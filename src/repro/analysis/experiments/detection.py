"""Experiment: the detection matrix (the paper's central security claims).

The paper's evaluation is qualitative about security: the UID variation
*guarantees* detection of attacks that corrupt UID values with complete (or
partial, byte-granular) attacker-chosen data, while the same attacks succeed
silently against an unprotected server; the stated limits are corruptions
confined to the sign bit (Section 3.2) and fault-style bit flips outside the
remote threat model.  This experiment makes those claims measurable: every
attack in the library is run against every configuration and the outcome
matrix is reported, together with the claims the matrix must satisfy.

The campaigns run through the engine's worker-pool scheduler
(``run(parallelism=8)`` interleaves the whole matrix), and both sweeps
include N>=3 orbit configurations -- the 3-variant UID orbit, the 3-variant
address orbit, and the combined address+UID orbit -- because the guarantee
is about data diversity, not about N=2, and the matrix shows it surviving
the generalisation on both re-expression families at once.
"""

from __future__ import annotations

import dataclasses

from repro.api.campaign import CampaignReport, run_campaign
from repro.api.experiments import ExperimentReport, ReportTable
from repro.api.spec import (
    ADDRESS_ORBIT_3_SPEC,
    ADDRESS_PARTITIONING_SPEC,
    COMBINED_ORBIT_3_SPEC,
    SINGLE_PROCESS_SPEC,
    UID_DIVERSITY_SPEC,
    UID_ORBIT_3_SPEC,
)
from repro.attacks.code_injection import run_code_injection_tagged, run_code_injection_untagged
from repro.attacks.outcomes import AttackOutcome, OutcomeKind

#: Attacks whose detection the paper explicitly does NOT promise (bit-granular
#: corruptions: the sign bit is outside the 31-bit mask, and identical XOR
#: deltas commute with the XOR reexpression; both require a non-remote,
#: fault-injection threat model).
OUTSIDE_GUARANTEE = frozenset({"low-bit-flip", "high-bit-flip"})

@dataclasses.dataclass
class DetectionMatrixResult:
    """Outcome matrix plus the paper's claims evaluated against it."""

    uid_report: CampaignReport
    address_report: CampaignReport
    code_injection_outcomes: list[AttackOutcome]

    # -- claims ------------------------------------------------------------------

    def claim_results(self) -> dict[str, bool]:
        """The paper's security claims, checked against the matrix."""
        uid_single = self.uid_report.by_configuration("single-process")
        uid_protected = self.uid_report.by_configuration("2-variant-uid")
        orbit_protected = self.uid_report.by_configuration("3-variant-uid-orbit")
        combined_protected = self.uid_report.by_configuration(COMBINED_ORBIT_3_SPEC.name)

        guaranteed = [o for o in uid_protected if o.attack not in OUTSIDE_GUARANTEE]
        outside = [o for o in uid_protected if o.attack in OUTSIDE_GUARANTEE]
        single_guaranteed = [o for o in uid_single if o.attack not in OUTSIDE_GUARANTEE]
        orbit_guaranteed = [o for o in orbit_protected if o.attack not in OUTSIDE_GUARANTEE]
        combined_guaranteed = [
            o for o in combined_protected if o.attack not in OUTSIDE_GUARANTEE
        ]

        address_single = self.address_report.by_configuration("single-process")
        address_protected = self.address_report.by_configuration("2-variant-address")
        address_orbit = self.address_report.by_configuration(ADDRESS_ORBIT_3_SPEC.name)
        combined_address = self.address_report.by_configuration(COMBINED_ORBIT_3_SPEC.name)

        return {
            "UID overwrite attacks compromise the unprotected server": any(
                o.kind is OutcomeKind.UNDETECTED_COMPROMISE for o in single_guaranteed
            ),
            "every in-guarantee UID attack is detected by the 2-variant UID system": all(
                o.kind is OutcomeKind.DETECTED for o in guaranteed
            ),
            "no in-guarantee attack compromises the 2-variant UID system undetected": not any(
                o.is_security_failure for o in guaranteed
            ),
            "bit-granular corruptions are (as documented) outside the guarantee": all(
                o.kind is not OutcomeKind.DETECTED for o in outside
            ),
            "the guarantee generalises: the 3-variant UID orbit detects every "
            "in-guarantee attack": bool(orbit_guaranteed)
            and all(o.kind is OutcomeKind.DETECTED for o in orbit_guaranteed),
            "address injection succeeds against a single process": any(
                o.goal_reached for o in address_single
            ),
            "address injection is detected under address partitioning": all(
                o.detected for o in address_protected
            ),
            "the partitioning family generalises: the 3-variant address orbit "
            "detects every address injection": bool(address_orbit)
            and all(o.detected for o in address_orbit),
            "the combined 3-variant address+uid orbit detects both attack "
            "families": bool(combined_guaranteed)
            and bool(combined_address)
            and all(o.kind is OutcomeKind.DETECTED for o in combined_guaranteed)
            and all(o.detected for o in combined_address),
            "code injection is detected under instruction tagging": all(
                o.detected for o in self.code_injection_outcomes if o.configuration != "single-process"
            ),
        }

    @property
    def all_claims_hold(self) -> bool:
        """True when every reproduced claim holds."""
        return all(self.claim_results().values())

    def to_report(self) -> ExperimentReport:
        """The matrix and claim evaluation as a shared experiment report."""
        matrix = self.uid_report.matrix()
        configurations = sorted({o.configuration for o in self.uid_report.outcomes})
        rows = [
            [attack] + [matrix[attack].get(configuration, "-") for configuration in configurations]
            for attack in matrix
        ]
        uid_table = ReportTable(
            title="Detection matrix: UID corruption attacks",
            headers=("UID attack", *configurations),
            rows=tuple(tuple(row) for row in rows),
        )
        address_table = ReportTable(
            title="Detection matrix: address injection",
            headers=("Address attack", "Configuration", "Outcome"),
            rows=tuple(
                (o.attack, o.configuration, o.kind.value)
                for o in self.address_report.outcomes
            ),
        )
        code_table = ReportTable(
            title="Detection matrix: code injection",
            headers=("Code-injection attack", "Configuration", "Outcome"),
            rows=tuple(
                (o.attack, o.configuration, o.kind.value)
                for o in self.code_injection_outcomes
            ),
        )
        telemetry = {}
        execution = self.uid_report.execution
        if execution is not None:
            telemetry.update(
                {
                    "campaign_backend": execution.backend,
                    "campaign_parallelism": execution.parallelism,
                    "campaign_cells": len(execution.jobs),
                    "campaign_virtual_elapsed": execution.virtual_elapsed,
                    "campaign_speedup": round(execution.speedup(), 2),
                }
            )
        return ExperimentReport(
            title="Detection matrix (the paper's central security claims)",
            sections=(uid_table, address_table, code_table),
            claims=self.claim_results(),
            telemetry=telemetry,
            result=self,
        )


def run(
    *, parallelism: int = 1, backend: str = "virtual", workers: int = 0
) -> DetectionMatrixResult:
    """Run the full detection matrix.

    ``parallelism`` (and the uniform ``workers`` spelling, which wins when
    non-zero) and ``backend`` are forwarded to
    :func:`~repro.api.campaign.run_campaign`: the matrix's cells are
    independent, so any worker count on either backend produces the same
    matrix -- only faster, in engine virtual time (``"virtual"``) or in real
    wall-clock time on OS worker processes (``"process"``).
    """
    from repro.attacks.memory_attacks import standard_address_attacks
    from repro.attacks.uid_attacks import standard_uid_attacks

    effective_workers = workers if workers else None
    uid_report = run_campaign(
        (SINGLE_PROCESS_SPEC, UID_DIVERSITY_SPEC, UID_ORBIT_3_SPEC, COMBINED_ORBIT_3_SPEC),
        standard_uid_attacks(),
        parallelism=parallelism,
        backend=backend,
        workers=effective_workers,
    )
    address_report = run_campaign(
        (
            SINGLE_PROCESS_SPEC,
            ADDRESS_PARTITIONING_SPEC,
            ADDRESS_ORBIT_3_SPEC,
            COMBINED_ORBIT_3_SPEC,
        ),
        standard_address_attacks(),
        parallelism=parallelism,
        backend=backend,
        workers=effective_workers,
    )
    code_outcomes = [run_code_injection_untagged(), run_code_injection_tagged()]
    return DetectionMatrixResult(
        uid_report=uid_report,
        address_report=address_report,
        code_injection_outcomes=code_outcomes,
    )


def experiment(
    *, parallelism: int = 1, backend: str = "virtual", workers: int = 0
) -> ExperimentReport:
    """Registry entry point: run the matrix, return the shared report."""
    return run(parallelism=parallelism, backend=backend, workers=workers).to_report()
