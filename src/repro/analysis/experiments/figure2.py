"""Experiment: Figure 2 (the data-diversity pipeline through the interpreters model).

Figure 2 of the paper shows how data diversity slots into an N-variant
system: trusted data is reexpressed per variant, untrusted input is
replicated verbatim, and the inverse reexpression functions sit immediately
in front of the target interpreters, whose inputs the monitor compares.

This experiment exercises that picture twice:

* at the model level, with :class:`~repro.core.pipeline.DataDiversityPipeline`
  (a vulnerable application interpreter, the UID reexpression pair, and a
  credential-setting target interpreter);
* end to end, by tracing a UID from the per-variant ``/etc/passwd-i`` files
  through the transformed mini-httpd into the kernel's ``seteuid``, showing
  that the two variants' user-space representations differ while the decoded
  value the kernel sees is identical.
"""

from __future__ import annotations

import dataclasses

from repro.api.experiments import ExperimentReport, ReportKeyValues
from repro.api.spec import UID_DIVERSITY_SPEC
from repro.apps.clients.webbench import WebBenchWorkload, drive_nvariant
from repro.core.pipeline import (
    DataDiversityPipeline,
    TargetInterpreter,
    vulnerable_app_interpreter,
)
from repro.core.variations.uid import UIDVariation
from repro.kernel.host import build_standard_host
from repro.kernel.passwd import parse_passwd


@dataclasses.dataclass
class Figure2Result:
    """Model-level and system-level traces of the data-diversity pipeline."""

    benign_decoded: tuple[int, ...]
    benign_concrete: tuple[int, ...]
    benign_detected: bool
    attack_decoded: tuple[int, ...]
    attack_detected: bool
    variant_passwd_uids: tuple[int, int]
    kernel_euids_after_drop: tuple[int, ...]
    system_alarms: int

    @property
    def reproduces_figure(self) -> bool:
        """Benign data flows through; identical injected data is stopped."""
        return (
            not self.benign_detected
            and self.attack_detected
            and len(set(self.kernel_euids_after_drop)) == 1
            and self.variant_passwd_uids[0] != self.variant_passwd_uids[1]
            and self.system_alarms == 0
        )

    def to_report(self) -> ExperimentReport:
        """The traces as a shared experiment report."""
        section = ReportKeyValues(
            title="Figure 2. N-variant systems with data diversity",
            pairs=(
                ("benign trusted value, concrete per variant", str(self.benign_concrete)),
                ("benign trusted value, decoded at target", str(self.benign_decoded)),
                ("injected value, decoded at target", str(self.attack_decoded)),
                (
                    "www-data uid in /etc/passwd-0 vs /etc/passwd-1",
                    str(self.variant_passwd_uids),
                ),
                (
                    "kernel euid after privilege drop, per variant",
                    str(self.kernel_euids_after_drop),
                ),
                ("alarms during benign end-to-end run", str(self.system_alarms)),
            ),
        )
        claims = {
            "benign trusted data flows through undetected": not self.benign_detected,
            "replicated injected data is detected": self.attack_detected,
            "per-variant passwd representations differ": (
                self.variant_passwd_uids[0] != self.variant_passwd_uids[1]
            ),
            "decoded kernel euids agree across variants": (
                len(set(self.kernel_euids_after_drop)) == 1
            ),
            "figure 2 claim reproduced": self.reproduces_figure,
        }
        return ExperimentReport(
            title="Figure 2: N-variant systems with data diversity",
            sections=(section,),
            claims=claims,
            result=self,
        )


def run() -> Figure2Result:
    """Run the Figure 2 scenario."""
    variation = UIDVariation()

    # -- model level: the interpreters pipeline ------------------------------------
    applied: list[int] = []
    pipeline = DataDiversityPipeline(
        reexpressions=[variation.reexpression(0), variation.reexpression(1)],
        app=vulnerable_app_interpreter(),
        target=TargetInterpreter(name="setuid", apply=applied.append),
    )
    benign = pipeline.process(b"GET /index.html", trusted_value=33)
    attack = pipeline.process(b"EXPLOIT: 0", trusted_value=33)

    # -- system level: unshared passwd files + the transformed server --------------
    kernel = build_standard_host()
    workload = WebBenchWorkload(total_requests=4)
    _, result = drive_nvariant(
        workload, UID_DIVERSITY_SPEC.with_name("figure2"), kernel=kernel
    )
    uids = []
    for index in range(2):
        entries = parse_passwd(kernel.fs.read_file(f"/etc/passwd-{index}").decode())
        uids.append(next(e.uid for e in entries if e.name == "www-data"))
    euids = tuple(
        process.credentials.euid
        for process in kernel.processes.all()
        if process.name.startswith("httpd")
    )

    return Figure2Result(
        benign_decoded=benign.decoded_values,
        benign_concrete=benign.concrete_values,
        benign_detected=benign.attack_detected,
        attack_decoded=attack.decoded_values,
        attack_detected=attack.attack_detected,
        variant_passwd_uids=(uids[0], uids[1]),
        kernel_euids_after_drop=euids,
        system_alarms=len(result.alarms),
    )


def experiment() -> ExperimentReport:
    """Registry entry point: run the scenario, return the shared report."""
    return run().to_report()
