"""Experiment: reproduce Table 1 (reexpression functions and their properties).

Regenerates the table of variations with their reexpression and inverse
functions, and verifies the two properties the paper's security argument
rests on for each variation: the inverse property (needed for normal
equivalence) and pairwise disjointedness of the inverse functions (needed for
detection).  For the UID variation the disjointedness check runs over the
valid uid_t domain (31-bit values), matching the paper's restriction.
"""

from __future__ import annotations

import dataclasses

from repro.api.experiments import ExperimentReport, ReportKeyValues, ReportTable
from repro.core.properties import check_variation_reexpression
from repro.core.reexpression import PropertyReport, sample_domain
from repro.core.variations import (
    AddressPartitioning,
    ExtendedAddressPartitioning,
    InstructionSetTagging,
    UIDVariation,
)
from repro.core.variations.base import Variation


@dataclasses.dataclass
class Table1Row:
    """One variation's row plus its property-check results."""

    variation: str
    target_type: str
    reexpression: str
    inverse: str
    reference: str
    property_reports: list[PropertyReport]

    @property
    def all_properties_hold(self) -> bool:
        """True when every checked property holds for this variation."""
        return all(report.holds for report in self.property_reports)


@dataclasses.dataclass
class Table1Result:
    """The full reproduced table."""

    rows: list[Table1Row]

    @property
    def all_hold(self) -> bool:
        """True when every variation satisfies inverse and disjointedness."""
        return all(row.all_properties_hold for row in self.rows)

    def to_report(self) -> ExperimentReport:
        """The table plus property checks as a shared experiment report."""
        table = ReportTable(
            title="Table 1. Reexpression Functions",
            headers=("Variation", "Target Type", "Reexpression Functions", "Inverse Functions"),
            rows=tuple(
                (row.variation, row.target_type, row.reexpression, row.inverse)
                for row in self.rows
            ),
        )
        checks = ReportKeyValues(
            title="Property checks (inverse and disjointedness)",
            pairs=tuple(
                (row.variation, report.describe())
                for row in self.rows
                for report in row.property_reports
            ),
        )
        claims = {
            f"{row.variation} satisfies inverse and disjointedness": row.all_properties_hold
            for row in self.rows
        }
        return ExperimentReport(
            title="Table 1: reexpression functions and their properties",
            sections=(table, checks),
            claims=claims,
            result=self,
        )


def _variations() -> list[Variation]:
    return [
        AddressPartitioning(),
        ExtendedAddressPartitioning(),
        InstructionSetTagging(),
        UIDVariation(),
    ]


def run(sample_count: int = 2048) -> Table1Result:
    """Run the Table 1 reproduction."""
    rows = []
    for variation in _variations():
        info = variation.table1_row()
        if variation.target_type == "uid":
            samples = sample_domain(bits=31, count=sample_count)
        elif variation.target_type == "address":
            samples = sample_domain(bits=32, count=sample_count)
        else:
            samples = sample_domain(bits=32, count=max(256, sample_count // 8))
        reports = check_variation_reexpression(variation, samples)
        rows.append(
            Table1Row(
                variation=info["variation"],
                target_type=info["target_type"],
                reexpression=info["reexpression"],
                inverse=info["inverse"],
                reference=info["reference"],
                property_reports=reports,
            )
        )
    return Table1Result(rows=rows)


def experiment(*, sample_count: int = 2048) -> ExperimentReport:
    """Registry entry point: run the table, return the shared report."""
    return run(sample_count=sample_count).to_report()
