"""Experiment: key entropy vs probes-to-first-alarm under keyed schemes.

The paper's detection matrix is boolean because its attacker knows every
variant's layout.  The keyed schemes (PR 7) withhold the layout behind
``key_bits`` of secret entropy, so detection becomes a game: the attacker
probes candidate layouts, and the quantity of interest is how many probes
the fleet tolerates before the first partial hit raises an alarm.

This experiment plays that game along three axes:

* **the entropy curve** -- the exhaustive ascending sweep (the analytic
  baseline) against ``keyed-orbit`` fleets over N x key_bits, every trial a
  campaign cell, all cells batched through one scheduler pass.  Expected
  probes-to-first-alarm is ``(2**k - N) / (N + 1) + 1`` and must grow with
  ``k`` at every N;
* **strategy comparison** -- exhaustive sweep vs random probing vs a
  partial-knowledge leak (and the leak against the slide-extended
  ``keyed-address`` scheme) at one fixed configuration;
* **the keyed-UID control** -- keyed masks randomise the *values*, not the
  detection: a seeded campaign of every standard UID attack against
  ``keyed_uid_spec(n)`` must keep the paper's deterministic guarantee.

Every random draw flows from one root ``seed`` through
:func:`~repro.api.seeding.derive_seed`, so the whole report -- including the
curve -- replays identically, which the experiment also claims by re-running
its first cell batch and comparing outcomes.
"""

from __future__ import annotations

import dataclasses
import statistics

from repro.analysis.experiments.detection import OUTSIDE_GUARANTEE
from repro.api.campaign import CampaignReport, run_campaign
from repro.api.experiments import ExperimentReport, ReportKeyValues, ReportTable
from repro.api.seeding import derive_seed
from repro.api.spec import keyed_uid_spec
from repro.attacks.outcomes import OutcomeKind
from repro.security.attacker import (
    AttackTrace,
    ExhaustiveSweepAttacker,
    PartialKnowledgeAttacker,
    RandomProbingAttacker,
    expected_exhaustive_probes,
    plan_trial,
    run_probe_batch,
)

#: Default root seed: the paper's publication date (DSN 2008, June 25).
DEFAULT_SEED = 20080625


@dataclasses.dataclass
class EntropyPoint:
    """One (N, key_bits) cell of the curve: all its trials as one trace."""

    num_variants: int
    key_bits: int
    trace: AttackTrace

    @property
    def mean_probes(self) -> float:
        """Sample mean probes-to-first-alarm over the point's trials."""
        return self.trace.mean_probes_to_first_alarm

    @property
    def analytic_probes(self) -> float:
        """The uniform-key expectation the sample mean estimates."""
        return expected_exhaustive_probes(self.key_bits, self.num_variants)


@dataclasses.dataclass
class EntropyResult:
    """The full game: curve, strategy comparison, UID control, replay check."""

    points: list[EntropyPoint]
    comparisons: list[tuple[str, AttackTrace]]
    uid_report: CampaignReport
    uid_guarantee: dict[int, bool]
    replay_identical: bool
    seed: int
    backend: str

    def curves(self) -> dict[int, list[EntropyPoint]]:
        """The points grouped per N, ordered by key_bits."""
        grouped: dict[int, list[EntropyPoint]] = {}
        for point in self.points:
            grouped.setdefault(point.num_variants, []).append(point)
        return {
            n: sorted(ps, key=lambda p: p.key_bits) for n, ps in sorted(grouped.items())
        }

    def claim_results(self) -> dict[str, bool]:
        """Entropy must buy probes, variants must buy detection, keys replay."""
        curves = {
            n: [p.mean_probes for p in ps] for n, ps in self.curves().items()
        }
        sweep_means = [statistics.fmean(curve) for _, curve in sorted(curves.items())]
        comparison = dict(self.comparisons)
        all_traces = [p.trace for p in self.points] + [t for _, t in self.comparisons]
        return {
            "mean probes-to-first-alarm grows with key entropy at every N": bool(curves)
            and all(
                earlier < later
                for curve in curves.values()
                for earlier, later in zip(curve, curve[1:])
            ),
            "averaged over the sweep, more variants need fewer probes": all(
                earlier > later for earlier, later in zip(sweep_means, sweep_means[1:])
            ),
            "the exhaustive sweep is always caught (alarm rate 1.0)": all(
                point.trace.alarm_rate == 1.0 for point in self.points
            ),
            "no probe sequence ever reaches an undetected compromise": all(
                trace.successes == 0 for trace in all_traces
            ),
            "a partial-knowledge leak needs fewer probes than the blind sweep": (
                comparison["partial-knowledge"].mean_probes_to_first_alarm
                < comparison["exhaustive-sweep"].mean_probes_to_first_alarm
            ),
            "keyed UID masks keep the deterministic detection guarantee": bool(
                self.uid_guarantee
            )
            and all(self.uid_guarantee.values()),
            "seeded trials replay identically": self.replay_identical,
        }

    @property
    def all_claims_hold(self) -> bool:
        """True when entropy, diversity and determinism all behave as claimed."""
        return all(self.claim_results().values())

    def to_report(self) -> ExperimentReport:
        """The game as a shared experiment report."""
        curve_rows = []
        for point in self.points:
            curve_rows.append(
                (
                    str(point.num_variants),
                    str(point.key_bits),
                    str(point.trace.trials),
                    f"{point.mean_probes:.2f}",
                    f"{point.analytic_probes:.2f}",
                    f"{point.trace.alarm_rate:.2f}",
                    str(point.trace.successes),
                )
            )
        curve = ReportTable(
            title="Entropy curve: exhaustive sweep vs keyed-orbit fleets",
            headers=(
                "N",
                "key bits",
                "trials",
                "mean probes to alarm",
                "analytic E[probes]",
                "alarm rate",
                "successes",
            ),
            rows=tuple(curve_rows),
        )
        comparison_rows = tuple(
            (
                label,
                str(trace.num_variants),
                str(trace.key_bits),
                "yes" if trace.slide else "no",
                str(trace.trials),
                f"{trace.mean_probes_to_first_alarm:.2f}",
                f"{trace.alarm_rate:.2f}",
                str(trace.successes),
            )
            for label, trace in self.comparisons
        )
        comparison = ReportTable(
            title="Attacker strategies at the largest swept key",
            headers=(
                "strategy",
                "N",
                "key bits",
                "slide",
                "trials",
                "mean probes to alarm",
                "alarm rate",
                "successes",
            ),
            rows=comparison_rows,
        )
        summary = ReportKeyValues(
            title="Game",
            pairs=(
                ("seed", str(self.seed)),
                ("backend", self.backend),
                ("probe cells", str(sum(p.trace.trials for p in self.points))),
                (
                    "keyed-UID configurations",
                    ", ".join(
                        f"N={n}:{'ok' if held else 'BROKEN'}"
                        for n, held in sorted(self.uid_guarantee.items())
                    ),
                ),
            ),
        )
        telemetry = {
            "probe_cells": sum(p.trace.trials for p in self.points)
            + sum(t.trials for _, t in self.comparisons),
            "probes_planned": sum(
                o.planned for p in self.points for o in p.trace.outcomes
            ),
        }
        return ExperimentReport(
            title="Key entropy vs probes-to-first-alarm (keyed schemes)",
            sections=(curve, comparison, summary),
            claims=self.claim_results(),
            telemetry=telemetry,
            result=self,
        )


def run(
    *,
    min_variants: int = 2,
    max_variants: int = 4,
    min_key_bits: int = 2,
    max_key_bits: int = 6,
    trials: int = 20,
    seed: int = DEFAULT_SEED,
    backend: str = "virtual",
    workers: int = 4,
) -> EntropyResult:
    """Play the keyed game over ``N x key_bits`` and the strategy panel."""
    from repro.attacks.uid_attacks import standard_uid_attacks

    if not 2 <= min_variants <= max_variants:
        raise ValueError(
            f"need 2 <= min_variants <= max_variants, got {min_variants}..{max_variants}"
        )
    if not 1 <= min_key_bits <= max_key_bits:
        raise ValueError(
            f"need 1 <= min_key_bits <= max_key_bits, got {min_key_bits}..{max_key_bits}"
        )
    if (1 << min_key_bits) < max_variants:
        raise ValueError(
            f"2**min_key_bits must cover max_variants slices "
            f"({1 << min_key_bits} < {max_variants})"
        )
    counts = list(range(min_variants, max_variants + 1))
    key_bits_range = list(range(min_key_bits, max_key_bits + 1))
    sweep = ExhaustiveSweepAttacker()

    # One flat plan list -> one scheduler pass; groups recovered by slicing,
    # since both backends return results in submission order.
    plans = []
    groups: dict[object, tuple[int, int]] = {}

    def plan_group(key, strategy, *, num_variants, key_bits, slide, label):
        start = len(plans)
        for t in range(trials):
            plans.append(
                plan_trial(
                    strategy,
                    num_variants=num_variants,
                    key_bits=key_bits,
                    seed=derive_seed(seed, label, num_variants, key_bits, t),
                    slide=slide,
                    name=f"{label}-n{num_variants}-k{key_bits}-t{t}",
                )
            )
        groups[key] = (start, len(plans))

    for n in counts:
        for k in key_bits_range:
            plan_group(("curve", n, k), sweep, num_variants=n, key_bits=k,
                       slide=False, label="curve")

    n_cmp, k_cmp = min_variants, max_key_bits
    panel = [
        ("exhaustive-sweep", sweep, False),
        ("random-probing", RandomProbingAttacker(), False),
        ("partial-knowledge", PartialKnowledgeAttacker(known_bits=2), False),
        ("partial-knowledge+slide", PartialKnowledgeAttacker(known_bits=2), True),
    ]
    for label, strategy, slide in panel:
        plan_group(("panel", label), strategy, num_variants=n_cmp,
                   key_bits=k_cmp, slide=slide, label=label)

    outcomes = run_probe_batch(plans, backend=backend, workers=workers)

    def trace_of(key, *, num_variants, key_bits, slide) -> AttackTrace:
        start, end = groups[key]
        return AttackTrace(
            strategy=plans[start].strategy,
            num_variants=num_variants,
            key_bits=key_bits,
            slide=slide,
            seed=seed,
            outcomes=outcomes[start:end],
        )

    points = [
        EntropyPoint(
            num_variants=n,
            key_bits=k,
            trace=trace_of(("curve", n, k), num_variants=n, key_bits=k, slide=False),
        )
        for n in counts
        for k in key_bits_range
    ]
    comparisons = [
        (label, trace_of(("panel", label), num_variants=n_cmp,
                         key_bits=k_cmp, slide=slide))
        for label, _, slide in panel
    ]

    # Determinism check: the first curve group, planned and run again from the
    # same root seed, must reproduce its outcomes bit for bit.
    first_start, first_end = groups[("curve", counts[0], key_bits_range[0])]
    replay = run_probe_batch(plans[first_start:first_end], backend=backend,
                             workers=workers)
    replay_identical = replay == outcomes[first_start:first_end]

    uid_report = run_campaign(
        [keyed_uid_spec(n) for n in counts],
        standard_uid_attacks(),
        parallelism=workers,
        backend=backend,
        seed=seed,
    )
    uid_guarantee = {}
    for n in counts:
        cell_outcomes = uid_report.by_configuration(keyed_uid_spec(n).name)
        guaranteed = [o for o in cell_outcomes if o.attack not in OUTSIDE_GUARANTEE]
        uid_guarantee[n] = bool(guaranteed) and all(
            o.kind is OutcomeKind.DETECTED for o in guaranteed
        )

    return EntropyResult(
        points=points,
        comparisons=comparisons,
        uid_report=uid_report,
        uid_guarantee=uid_guarantee,
        replay_identical=replay_identical,
        seed=seed,
        backend=backend,
    )


def experiment(
    *,
    min_variants: int = 2,
    max_variants: int = 4,
    min_key_bits: int = 2,
    max_key_bits: int = 6,
    trials: int = 20,
    seed: int = DEFAULT_SEED,
    backend: str = "virtual",
    workers: int = 4,
) -> ExperimentReport:
    """Registry entry point: play the game, return the shared report."""
    return run(
        min_variants=min_variants,
        max_variants=max_variants,
        min_key_bits=min_key_bits,
        max_key_bits=max_key_bits,
        trials=trials,
        seed=seed,
        backend=backend,
        workers=workers,
    ).to_report()
