"""Plain-text and Markdown table rendering for experiment reports.

Every experiment driver returns structured data; these helpers render that
data as aligned text tables so the benchmark harness can print output that
reads like the paper's tables (and EXPERIMENTS.md can embed it verbatim).
The Markdown variants back :meth:`repro.api.experiments.ExperimentReport.format`
with ``style="markdown"``, so reports paste directly into docs and PRs.
"""

from __future__ import annotations

from typing import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = "") -> str:
    """Render a simple aligned text table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} does not have {columns} columns")
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(format_row(list(headers)))
    lines.append(format_row(["-" * width for width in widths]))
    lines.extend(format_row(row) for row in rendered_rows)
    return "\n".join(lines)


def render_key_values(pairs: Sequence[tuple[str, object]], *, title: str = "") -> str:
    """Render aligned ``key: value`` lines."""
    width = max((len(key) for key, _ in pairs), default=0)
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    lines.extend(f"{key.ljust(width)} : {value}" for key, value in pairs)
    return "\n".join(lines)


def _markdown_cell(cell: object) -> str:
    return str(cell).replace("|", "\\|")


def render_table_markdown(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Render the same table as GitHub-flavoured Markdown."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} does not have {columns} columns")
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(_markdown_cell(h) for h in headers) + " |")
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    lines.extend(
        "| " + " | ".join(_markdown_cell(cell) for cell in row) + " |" for row in rows
    )
    return "\n".join(lines)


def render_key_values_markdown(
    pairs: Sequence[tuple[str, object]], *, title: str = ""
) -> str:
    """Render ``key: value`` pairs as a two-column Markdown table."""
    return render_table_markdown(["key", "value"], list(pairs), title=title)
