"""Virtual-time performance model for the Table 3 reproduction.

The paper measures wall-clock throughput and latency of Apache under
WebBench on a 1.4 GHz Pentium 4.  This reproduction runs on a simulator, so
absolute wall-clock numbers would be meaningless; instead we charge *virtual
time* to the resources the paper's analysis identifies:

* CPU work is performed **per variant** (all computation is executed N
  times), and grows with per-request processing, response bytes copied, the
  number of system calls, and the cross-variant checks done by the wrappers
  and monitor;
* I/O work (disk reads, network sends) is performed **once** regardless of N,
  because the wrapper layer executes input and output system calls a single
  time;
* unsaturated clients additionally see a fixed network round-trip.

Those two facts produce the paper's qualitative result: an I/O-bound
(unsaturated) server pays a modest price for redundant execution, a
CPU-bound (saturated) server pays roughly a factor of the number of
variants, and the UID variation's extra detection system calls cost a few
percent on top of the 2-variant baseline.

The model consumes :class:`~repro.apps.clients.webbench.WorkloadMeasurement`
records -- real counts from running the simulated system -- and converts
them into throughput (KB/s) and latency (ms) under a given client load using
standard single-server queueing relations (bottleneck throughput and
Little's law).
"""

from __future__ import annotations

import dataclasses

from repro.apps.clients.webbench import WorkloadMeasurement


@dataclasses.dataclass(frozen=True)
class CostParameters:
    """Virtual-time cost constants (microseconds).

    The defaults are calibrated so that the *shape* of Table 3 emerges:
    CPU demand for a single variant is roughly 10-15% of the unsaturated
    response time (the rest is I/O and client round-trip), and the wrapper /
    monitor checking adds a few tens of percent of one variant's CPU demand.
    """

    #: Fixed CPU cost per request per variant (parsing, dispatch, handling).
    per_request_cpu: float = 500.0
    #: CPU cost per response-body byte per variant (copying, formatting).
    per_byte_cpu: float = 0.005
    #: CPU cost of servicing one system call (kernel entry/exit + work).
    per_syscall_cpu: float = 2.0
    #: CPU cost of one cross-variant equivalence check in the wrapper/monitor.
    per_check_cpu: float = 4.0
    #: I/O time per byte moved to/from disk or the network (performed once).
    io_per_byte: float = 0.004
    #: Client-observed network round trip added to unsaturated latency.
    network_rtt: float = 5400.0


@dataclasses.dataclass(frozen=True)
class PerfPoint:
    """One cell pair of Table 3: throughput and latency under a load level."""

    throughput_kbps: float
    latency_ms: float

    def describe(self) -> str:
        """Compact rendering."""
        return f"{self.throughput_kbps:8.1f} KB/s  {self.latency_ms:6.2f} ms"


@dataclasses.dataclass(frozen=True)
class ResourceDemand:
    """Per-request service demands derived from a measurement."""

    cpu_us: float
    io_us: float
    body_bytes: float

    @property
    def bottleneck_us(self) -> float:
        """Service time at the bottleneck resource for a saturated server."""
        return max(self.cpu_us, self.io_us)


class PerformanceModel:
    """Turns workload measurements into Table 3 style numbers."""

    def __init__(self, parameters: CostParameters | None = None):
        self.parameters = parameters if parameters is not None else CostParameters()

    # -- demands --------------------------------------------------------------

    def demands(self, measurement: WorkloadMeasurement) -> ResourceDemand:
        """Per-request CPU and I/O service demands for a configuration."""
        p = self.parameters
        requests = max(1, measurement.requests_completed)
        body_bytes = measurement.response_bytes / requests
        syscalls_per_request = measurement.syscalls_total / requests
        checks_per_request = measurement.monitor_checks / requests

        cpu = (
            p.per_request_cpu * measurement.num_variants
            + p.per_byte_cpu * body_bytes * measurement.num_variants
            + p.per_syscall_cpu * syscalls_per_request
            + p.per_check_cpu * checks_per_request
        )
        io_bytes = (measurement.bytes_read + measurement.bytes_written) / requests
        io = p.io_per_byte * io_bytes
        return ResourceDemand(cpu_us=cpu, io_us=io, body_bytes=body_bytes)

    # -- load levels ---------------------------------------------------------------

    def unsaturated(self, measurement: WorkloadMeasurement) -> PerfPoint:
        """A single client engine: latency-bound, mostly I/O and round-trip."""
        demand = self.demands(measurement)
        latency_us = demand.cpu_us + demand.io_us + self.parameters.network_rtt
        throughput = self._throughput_kbps(demand.body_bytes, 1e6 / latency_us)
        return PerfPoint(throughput_kbps=throughput, latency_ms=latency_us / 1000.0)

    def saturated(self, measurement: WorkloadMeasurement, *, clients: int | None = None) -> PerfPoint:
        """Many concurrent engines: throughput-bound at the bottleneck resource."""
        demand = self.demands(measurement)
        concurrency = clients if clients is not None else max(2, measurement.concurrent_clients)
        requests_per_second = 1e6 / demand.bottleneck_us
        throughput = self._throughput_kbps(demand.body_bytes, requests_per_second)
        latency_ms = concurrency / requests_per_second * 1000.0
        return PerfPoint(throughput_kbps=throughput, latency_ms=latency_ms)

    @staticmethod
    def _throughput_kbps(body_bytes: float, requests_per_second: float) -> float:
        return body_bytes * requests_per_second / 1024.0


def percent_change(baseline: float, value: float) -> float:
    """Relative change of *value* against *baseline*, in percent."""
    if baseline == 0:
        return 0.0
    return (value - baseline) / baseline * 100.0
