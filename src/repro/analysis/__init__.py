"""Analysis layer: performance model, table rendering and experiment drivers."""

from repro.analysis.perfmodel import (
    CostParameters,
    PerfPoint,
    PerformanceModel,
    ResourceDemand,
    percent_change,
)
from repro.analysis.tables import render_key_values, render_table

__all__ = [
    "CostParameters",
    "PerfPoint",
    "PerformanceModel",
    "ResourceDemand",
    "percent_change",
    "render_key_values",
    "render_table",
]
