"""Benchmark: regenerate Table 2 (detection system calls) with live behaviour checks."""

from conftest import emit

from repro.analysis.experiments import table2


def test_table2_detection_syscalls(benchmark):
    """Every Table 2 call is silent on equivalent data and alarms on injected data."""
    result = benchmark(table2.run)
    emit("Table 2: Detection System Calls", result.format())
    assert result.all_correct
    assert len(result.checks) == 8
