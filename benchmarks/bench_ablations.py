"""Benchmark: design-choice ablations (detection calls, reexpression mask, unshared files)."""

from conftest import emit

from repro.analysis.experiments import ablations


def test_ablation_detection_latency(benchmark):
    """Detection syscalls catch corrupted UIDs at first use, not at the next kernel call."""
    result = benchmark(ablations.run_detection_latency)
    emit("Ablation 1: detection syscalls vs syscall-boundary monitoring", result.format())
    assert result.with_detection_calls is not None
    assert result.without_detection_calls is not None
    assert result.with_detection_calls < result.without_detection_calls


def test_ablation_reexpression_mask(benchmark):
    """XOR 0xFFFFFFFF breaks normal operation; XOR 0x7FFFFFFF works but has the sign-bit blind spot."""
    result = benchmark(ablations.run_mask_ablation)
    emit("Ablation 2: reexpression mask", result.format())
    assert result.paper_mask_serves_normally
    assert result.full_flip_breaks_normal_operation
    assert result.paper_mask_high_bit_blind_spot
    assert result.full_flip_closes_blind_spot


def test_ablation_unshared_files(benchmark):
    """Unshared files close the in-process reexpression bypass (Section 3.4)."""
    result = benchmark(ablations.run_external_data_ablation)
    emit("Ablation 3: unshared files vs in-process reexpression", result.format())
    assert result.unshared_files_detects_injection
    assert not result.in_process_reexpression_detects_injection
