"""Benchmark: campaign throughput through the engine's worker pool.

The detection-matrix scenario -- every standard attack against the paper's
four configurations plus the 3-variant UID orbit -- is one batch of
independent cells, so the campaign scheduler's worker pool turns it into a
near-linear concurrency win in engine virtual time: each worker slot runs its
share of cells back-to-back while the slots progress in parallel, and the
campaign's elapsed time is the max over slots instead of the serial sum.

The acceptance bar: ``parallelism=8`` is at least 3x faster than the serial
campaign while producing byte-identical per-cell outcomes, with no scheduler
starvation.
"""

from conftest import emit, write_results

from repro.api.campaign import run_campaign
from repro.api.spec import STANDARD_SYSTEM_SPECS, UID_ORBIT_3_SPEC

#: Worker counts swept by the scaling study.
PARALLELISMS = (1, 2, 4, 8)

#: The detection-matrix scenario's configurations, with the N=3 orbit riding
#: along so the N-way sweep axis is part of the measured workload.
SPECS = (*STANDARD_SYSTEM_SPECS, UID_ORBIT_3_SPEC)


def run_scaling():
    """Run the full standard-attack campaign at each worker count."""
    return {
        parallelism: run_campaign(SPECS, parallelism=parallelism)
        for parallelism in PARALLELISMS
    }


def format_scaling(results) -> str:
    lines = [
        f"{'workers':>8} {'cells':>6} {'ticks':>8} {'seq ticks':>10} "
        f"{'speedup':>8} {'turns':>6}"
    ]
    for parallelism, report in results.items():
        execution = report.execution
        lines.append(
            f"{parallelism:>8} {len(execution.jobs):>6} {execution.virtual_elapsed:>8} "
            f"{execution.virtual_elapsed_sequential:>10} {execution.speedup():>8.2f} "
            f"{execution.scheduler_turns:>6}"
        )
    return "\n".join(lines)


def test_campaign_throughput_scaling(benchmark):
    """8 workers run the detection-matrix campaign >= 3x faster than serial.

    Speedup is measured in engine virtual time (worker slots model replicas
    on parallel hardware), and the parity assertions are load-bearing: the
    speedup may never come from changing what any cell computes.
    """
    results = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    emit("Campaign throughput: virtual time vs. worker count", format_scaling(results))

    serial = results[1]
    assert serial.execution.virtual_elapsed == serial.execution.virtual_elapsed_sequential
    for parallelism, report in results.items():
        # Parity: identical outcomes, identical order, at every worker count.
        assert report.outcomes == serial.outcomes, parallelism
        assert report.execution.max_wait_turns == 0
        assert len(report.execution.jobs) == len(SPECS) * 9  # 7 UID + 2 address attacks

    # The N=3 orbit ran through the full campaign path and held the guarantee.
    orbit_rate = serial.detection_rate("3-variant-uid-orbit")
    assert orbit_rate >= serial.detection_rate("single-process")
    assert any(o.configuration == "3-variant-uid-orbit" for o in serial.outcomes)

    speedup = (
        serial.execution.virtual_elapsed / results[8].execution.virtual_elapsed
    )
    assert speedup >= 3.0, speedup

    write_results(
        "campaign_throughput",
        {
            "config": {
                "systems": [spec.to_dict() for spec in SPECS],
                "parallelisms": list(PARALLELISMS),
            },
            "rows": [
                {
                    "parallelism": parallelism,
                    "cells": len(report.execution.jobs),
                    "virtual_elapsed": report.execution.virtual_elapsed,
                    "virtual_elapsed_sequential": report.execution.virtual_elapsed_sequential,
                    "speedup": round(report.execution.speedup(), 3),
                    "scheduler_turns": report.execution.scheduler_turns,
                }
                for parallelism, report in results.items()
            ],
            "speedup_at_8_workers": round(speedup, 3),
        },
    )
