"""Benchmark: every registered experiment, generically, through the registry.

This replaces the eight hand-written ``bench_<experiment>.py`` modules: the
harness parametrizes over :data:`repro.api.experiments.experiments`, so a new
registered experiment is benchmarked (and its claims asserted) with zero new
benchmark code.  Per-experiment structural assertions -- the checks that go
beyond "every claim holds", e.g. Table 3's overhead directions -- live in
:data:`EXTRA_CHECKS`, keyed by registry name and fed the experiment module's
underlying structured result.

Each run persists ``benchmarks/results/BENCH_<name>.json`` (the report's
schema-stable JSON plus wall-clock timing), so the reproduction's output and
performance trajectory are diffable across PRs.
"""

import pytest

from conftest import emit, write_results

from repro.api.experiments import experiments
from repro.api.spec import ExperimentSpec

#: Parameter overrides for the benchmarked run (default: the registry entry's
#: own defaults).  The detection matrix runs at the engine's worker-pool
#: parallelism, as the experiment module documents.
BENCH_PARAMS = {
    "detection": {"parallelism": 8},
}


def _check_table1(result) -> None:
    assert result.all_hold
    assert len(result.rows) == 4
    uid_row = next(row for row in result.rows if row.target_type == "uid")
    assert "7FFFFFFF" in uid_row.reexpression.upper()


def _check_table2(result) -> None:
    assert result.all_correct
    assert len(result.checks) == 8


def _check_table3(result) -> None:
    shape = result.shape_holds()
    assert all(shape.values()), shape
    for configuration in result.configurations:
        assert configuration.measurement.completed_ok, configuration.key
    # Quantitative overhead directions match the paper's Table 3: redundant
    # execution costs something unsaturated but far less than 2x, saturated
    # throughput roughly halves, and the UID variation's increment is small.
    unsat_drop = result.overhead_vs_baseline("3-2variant-address", saturated=False)
    assert -30.0 < unsat_drop < -1.0
    sat_drop = result.overhead_vs_baseline("3-2variant-address", saturated=True)
    assert -65.0 < sat_drop < -40.0
    assert -10.0 < result.uid_overhead_vs_2variant(saturated=True) <= 0.0
    assert -10.0 < result.uid_overhead_vs_2variant(saturated=False) <= 0.0


def _check_figure1(result) -> None:
    assert result.reproduces_figure
    assert result.equivalence.holds
    # The same attacks succeed (or at worst crash) against a single process;
    # under partitioning every injection is detected.
    assert any(outcome.goal_reached for outcome in result.single_outcomes)
    assert all(outcome.detected for outcome in result.nvariant_outcomes)


def _check_figure2(result) -> None:
    assert result.reproduces_figure
    # Per-variant representations differ while decoded values agree; an
    # injected concrete value decodes differently and is detected.
    assert result.variant_passwd_uids[0] != result.variant_passwd_uids[1]
    assert result.benign_decoded[0] == result.benign_decoded[1]
    assert result.attack_decoded[0] != result.attack_decoded[1]
    assert result.attack_detected


def _check_section4(result) -> None:
    from repro.transform.report import ChangeCategory

    report = result.report
    for category in (
        ChangeCategory.CONSTANT,
        ChangeCategory.UID_VALUE,
        ChangeCategory.COMPARISON,
        ChangeCategory.COND_CHK,
    ):
        assert report.count(category) > 0, category
    assert report.total_paper_categories >= 40
    assert "cc_eq" in result.transformed_source
    assert "uid_value" in result.transformed_source
    assert "cond_chk" in result.transformed_source
    assert "0x7fffffff" in result.transformed_source.lower()


def _check_detection(result) -> None:
    claims = result.claim_results()
    assert all(claims.values()), claims
    assert result.all_claims_hold


def _check_nscaling(result) -> None:
    counts = [point.num_variants for point in result.points]
    assert counts == sorted(counts) and counts[0] == 2 and counts[-1] >= 3
    # Detection survives every swept N on both orbit families, and the
    # lockstep cost curve is strictly monotone in N.
    assert all(point.uid_guarantee_holds for point in result.points)
    assert all(point.address_guarantee_holds for point in result.points)
    syscalls = [point.lockstep_syscalls for point in result.points]
    assert all(a < b for a, b in zip(syscalls, syscalls[1:]))


def _check_entropy(result) -> None:
    claims = result.claim_results()
    assert all(claims.values()), claims
    # The curve grows with key entropy at every N and tracks the analytic
    # expectation within sampling error; nobody ever compromises undetected.
    for n, points in result.curves().items():
        bits = [point.key_bits for point in points]
        assert bits == sorted(bits), n
        means = [point.mean_probes for point in points]
        assert all(a < b for a, b in zip(means, means[1:])), (n, means)
        for point in points:
            assert point.mean_probes < 3 * point.analytic_probes + 2
            assert point.trace.successes == 0
    assert result.replay_identical
    assert all(result.uid_guarantee.values())


def _check_corpus(result) -> None:
    claims = result.claim_results()
    assert all(claims.values()), claims
    card = result.scorecard
    # The corpus is the full default matrix: hundreds of records, every
    # mutation class represented, and the exempt class both escapes and
    # contains outright compromises (the outside-the-guarantee evidence).
    assert card.total >= 200
    assert card.passed == card.total and not card.misses
    assert len(result.mutation_classes()) >= 8
    assert card.exempt_total > 0
    assert card.exempt_undetected == card.exempt_total
    assert card.exempt_compromises > 0
    assert list(result.scorecards) == ["virtual", "process"]


def _check_apps(result) -> None:
    claims = result.claim_results()
    assert all(claims.values()), claims
    assert result.all_claims_hold
    # Both backends ran and reproduced identical matrices on both apps, the
    # matrices agree across apps cell-for-cell, and the alarm telemetry names
    # the interposed syscalls that raised the alarms.
    assert result.backends == ("virtual", "process")
    for backend in result.backends:
        assert result.matrix("httpd", backend) == result.matrix("ftpd", backend)
    assert result.alarm_breakdown
    assert all(count > 0 for count in result.alarm_breakdown.values())
    for measurements in result.measurements.values():
        assert [m.num_variants for m in measurements] == [1, 2, 3]


def _check_ablations(result) -> None:
    latency = result.detection_latency
    assert latency.with_detection_calls is not None
    assert latency.without_detection_calls is not None
    assert latency.with_detection_calls < latency.without_detection_calls
    mask = result.mask
    assert mask.paper_mask_serves_normally
    assert mask.full_flip_breaks_normal_operation
    assert mask.paper_mask_high_bit_blind_spot
    assert mask.full_flip_closes_blind_spot
    external = result.external_data
    assert external.unshared_files_detects_injection
    assert not external.in_process_reexpression_detects_injection


def _check_loadtest(result) -> None:
    claims = result.claim_results()
    assert all(claims.values()), claims
    # Both backends swept the full grid and agreed byte for byte; the
    # migration pair actually moved; the top-rate cells genuinely shed while
    # the accept-all control absorbed everything into its tail.
    assert result.backends == ("virtual", "process")
    assert result.migration_moved["migrated"]
    assert result.migration_base["response_digest"] == result.migration_moved["response_digest"]
    top = result.multipliers[-1]
    for spec in (f"{n}-variant-uid-orbit" for n in result.variant_counts):
        accept = result.cell("virtual", spec, "accept-all", top)
        bounded = result.cell("virtual", spec, "bounded-newest", top)
        assert accept["shed"] == 0 and bounded["shed"] > 0
        assert accept["queue_high_water"] > bounded["queue_high_water"]
        assert bounded["latency"]["p99"] <= accept["latency"]["p99"]
        # Sojourn percentiles are real measurements, not sentinel nulls.
        assert accept["latency"]["p999"] is not None


#: Structural assertions on the underlying result, by experiment name.  An
#: experiment without an entry is still run and gated on its claims.
EXTRA_CHECKS = {
    "loadtest": _check_loadtest,
    "apps": _check_apps,
    "table1": _check_table1,
    "table2": _check_table2,
    "table3": _check_table3,
    "figure1": _check_figure1,
    "figure2": _check_figure2,
    "section4": _check_section4,
    "detection": _check_detection,
    "nscaling": _check_nscaling,
    "ablations": _check_ablations,
    "entropy": _check_entropy,
    "corpus": _check_corpus,
}


def _spec(name: str) -> ExperimentSpec:
    return ExperimentSpec(name=name, params=BENCH_PARAMS.get(name, {}))


@pytest.mark.parametrize("name", experiments.names())
def test_experiment(name, benchmark):
    """Run one registered experiment; every claim must hold."""
    report = benchmark.pedantic(
        experiments.run, args=(_spec(name),), rounds=1, iterations=1
    )
    emit(report.title, report.format())
    assert report.ok, report.failed_claims
    check = EXTRA_CHECKS.get(name)
    if check is not None:
        check(report.result)
    # The persisted result must be deterministic so committed BENCH_*.json
    # files only diff when the reproduction's output actually changes.
    payload = report.to_dict()
    payload["telemetry"].pop("wall_seconds", None)
    write_results(name, payload)
