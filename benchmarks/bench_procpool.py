"""Benchmark: real wall-clock campaign speedup on the process tier.

Every other benchmark in this harness measures *virtual* time -- the engine's
tick accounting, deterministic on any machine.  This one measures the wall
clock: the multi-process master/worker tier (``backend="process"``) runs the
same campaign cells on pre-forked OS workers, so elapsed real time should
drop as workers are added.

Two workload families are timed, because they scale with different host
resources:

* ``service`` rows attach a real per-cell blocking wait (``service_delay_ms``,
  the network/disk service time the in-process simulation elides).  Worker
  processes overlap blocking waits regardless of core count, so the >= 2x
  acceptance bar at 4 workers holds even on a single-core CI host.
* ``compute`` rows run the pure-simulation cells.  Their speedup needs real
  cores, so the bar is asserted only when the host offers >= 4 of them; the
  measured figure is recorded either way.

Timing protocol: one warmup run per (family, workers) point on a freshly
forked fleet, then the minimum of ``REPEATS`` timed runs through the same
warm pool (``time.perf_counter``).  Parity is load-bearing as always: every
timed configuration must produce outcomes identical to the virtual-serial
reference -- wall-clock wins may never come from changing what a cell
computes.

All wall-clock-derived result keys are prefixed ``wall_`` so the trajectory
diff (``benchmarks/bench_diff.py``) can exclude them from flip gating: they
are host noise, not reproduction state.  ``BENCH_PROCPOOL_SMOKE=1`` shrinks
the matrix and skips both the timing assertions and the results file -- the
mode ``make bench-smoke`` / ``make bench-procpool-smoke`` use to exercise the
assertions without timing a shared CI box.
"""

import dataclasses
import json
import os
import time

from conftest import emit, write_results

from repro.api.campaign import process_campaign_jobs, run_campaign
from repro.api.spec import (
    SINGLE_PROCESS_SPEC,
    STANDARD_SYSTEM_SPECS,
    UID_DIVERSITY_SPEC,
    UID_ORBIT_3_SPEC,
)
from repro.attacks.uid_attacks import standard_uid_attacks
from repro.engine.procpool import ProcessWorkerPool

SMOKE = os.environ.get("BENCH_PROCPOOL_SMOKE") == "1"

#: Worker counts swept (the acceptance bar compares the ends).
WORKERS = (1, 2) if SMOKE else (1, 2, 4)

#: Timed repetitions per point (minimum taken); one warmup precedes them.
REPEATS = 1 if SMOKE else 3

#: Real blocking wait per service-family cell, in milliseconds.
SERVICE_DELAY_MS = 5 if SMOKE else 40

#: The service family: few cells, dominated by the blocking wait.
SERVICE_SPECS = (SINGLE_PROCESS_SPEC, UID_DIVERSITY_SPEC, UID_ORBIT_3_SPEC)
SERVICE_ATTACK_NAMES = ("full-word-root-overwrite", "partial-1-byte-overwrite")

#: The compute family: the full standard campaign (pure simulation cells).
COMPUTE_SPECS = (
    (SINGLE_PROCESS_SPEC, UID_DIVERSITY_SPEC)
    if SMOKE
    else (*STANDARD_SYSTEM_SPECS, UID_ORBIT_3_SPEC)
)


def _service_attacks():
    return [a for a in standard_uid_attacks() if a.name in SERVICE_ATTACK_NAMES]


def _outcome_bytes(values):
    """Byte-level rendering of a result's outcome values (order-sensitive)."""
    return json.dumps(
        [dataclasses.asdict(v) | {"kind": v.kind.value} for v in values]
    ).encode()


def _families():
    """(name, jobs, parity-reference outcomes) per workload family."""
    service_specs = SERVICE_SPECS[:2] if SMOKE else SERVICE_SPECS
    families = {
        "service": (
            process_campaign_jobs(
                service_specs, _service_attacks(), service_delay_ms=SERVICE_DELAY_MS
            ),
            run_campaign(service_specs, _service_attacks()).outcomes,
        ),
        "compute": (
            process_campaign_jobs(COMPUTE_SPECS),
            run_campaign(COMPUTE_SPECS).outcomes,
        ),
    }
    return families


def _time_point(jobs, workers):
    """Fork a fleet of *workers*, warm it up, return (best wall, last result)."""
    with ProcessWorkerPool(workers) as pool:
        pool.run(jobs)  # warmup: page in modules, settle queue plumbing
        best = float("inf")
        result = None
        for _ in range(REPEATS):
            started = time.perf_counter()
            result = pool.run(jobs)
            best = min(best, time.perf_counter() - started)
    return best, result


def run_matrix():
    """Time every (family, workers) point; verify parity at each one."""
    rows = []
    for family, (jobs, reference) in _families().items():
        baseline = None
        for workers in WORKERS:
            wall, result = _time_point(jobs, workers)
            completed = [job.value for job in result.jobs]
            assert _outcome_bytes(completed) == _outcome_bytes(reference), (
                family,
                workers,
            )
            if workers == 1:
                baseline = wall
            rows.append(
                {
                    "family": family,
                    "workers": workers,
                    "cells": len(jobs),
                    "virtual_elapsed_sequential": result.virtual_elapsed_sequential,
                    # Steal counts depend on which worker drained first, i.e.
                    # on wall timing -- host noise like the timings themselves.
                    "wall_steals": result.steals,
                    "wall_seconds": round(wall, 4),
                    "wall_speedup": round(baseline / wall, 3) if wall else None,
                }
            )
    return rows


def format_rows(rows) -> str:
    lines = [
        f"{'family':>8} {'workers':>8} {'cells':>6} {'wall s':>9} {'speedup':>8} "
        f"{'steals':>7}"
    ]
    for row in rows:
        lines.append(
            f"{row['family']:>8} {row['workers']:>8} {row['cells']:>6} "
            f"{row['wall_seconds']:>9.4f} {row['wall_speedup']:>8.2f} "
            f"{row['wall_steals']:>7}"
        )
    return "\n".join(lines)


def _speedup(rows, family, workers) -> float:
    (row,) = [r for r in rows if r["family"] == family and r["workers"] == workers]
    return row["wall_speedup"]


def test_procpool_wall_clock_scaling(benchmark):
    """4 process workers cut real campaign wall time >= 2x on blocking cells.

    The service family's speedup comes from overlapping real per-cell waits,
    so it holds on any host; the compute family's needs physical cores and
    is asserted only when the host has >= 4.  Parity is asserted inside the
    matrix at every point, smoke or not.
    """
    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    host_cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    emit(
        f"Process-tier wall clock vs. worker count (host cpus: {host_cpus})",
        format_rows(rows),
    )
    if SMOKE:
        return  # matrix + parity exercised; timing a shared box proves nothing

    max_workers = WORKERS[-1]
    service_speedup = _speedup(rows, "service", max_workers)
    assert service_speedup >= 2.0, rows
    compute_speedup = _speedup(rows, "compute", max_workers)
    if host_cpus >= max_workers:
        assert compute_speedup >= 2.0, rows

    write_results(
        "procpool",
        {
            "config": {
                "workers": list(WORKERS),
                "repeats": REPEATS,
                "service_delay_ms": SERVICE_DELAY_MS,
                "service_cells": len(_families()["service"][0]),
                "compute_cells": len(_families()["compute"][0]),
            },
            "rows": rows,
            "wall_host_cpus": host_cpus,
            "wall_service_speedup_at_max_workers": service_speedup,
            "wall_compute_speedup_at_max_workers": compute_speedup,
        },
    )
