"""Benchmark: aggregate throughput of the concurrent multi-session engine.

The engine interleaves M independent N-variant httpd sessions (sharded
replicas, each on its own simulated host) and accounts virtual time as the
max over sessions -- the parallel-hardware semantics.  The acceptance bar:
aggregate requests/sec at 8 concurrent sessions is at least 4x the
single-session baseline, with zero spurious alarms on the benign workload.
"""

from conftest import emit, write_results

from repro.api.spec import ADDRESS_UID_SPEC, FleetSpec, WorkloadSpec
from repro.apps.clients.webbench import drive_engine

#: Benign requests served by each session (kept small: virtual time is
#: deterministic, so scaling ratios do not depend on the workload size).
REQUESTS_PER_SESSION = 12

#: Session counts swept by the scaling study.
SESSION_COUNTS = (1, 2, 4, 8)

#: The per-session system under test: address partitioning + UID diversity.
SYSTEM = ADDRESS_UID_SPEC.with_name("httpd")


def _fleet(sessions: int, *, total_requests: int, requests_per_connection: int = 1,
           multiplex: int = 1, name: str | None = None) -> FleetSpec:
    return FleetSpec(
        name=name if name is not None else f"engine-{sessions}",
        system=SYSTEM,
        num_sessions=sessions,
        workload=WorkloadSpec(
            total_requests=total_requests,
            requests_per_connection=requests_per_connection,
        ),
        multiplex=multiplex,
    )


def run_scaling(requests_per_session: int = REQUESTS_PER_SESSION):
    """Drive the benign workload at each session count; returns measurements."""
    results = {}
    for sessions in SESSION_COUNTS:
        results[sessions] = drive_engine(
            _fleet(sessions, total_requests=requests_per_session * sessions)
        )
    return results


def format_scaling(results) -> str:
    lines = [
        f"{'sessions':>8} {'requests':>9} {'alarms':>7} "
        f"{'req/ktick':>10} {'seq req/ktick':>14} {'speedup':>8}"
    ]
    for sessions, measurement in results.items():
        lines.append(
            f"{sessions:>8} {measurement.requests_completed:>9} {measurement.alarms:>7} "
            f"{measurement.requests_per_kilotick():>10.2f} "
            f"{measurement.sequential_requests_per_kilotick():>14.2f} "
            f"{measurement.speedup():>8.2f}"
        )
    return "\n".join(lines)


def test_engine_throughput_scaling(benchmark):
    """8 concurrent sessions sustain >= 4x the single-session request rate.

    With per-session hosts the max-over-sessions time accounting makes the
    speedup structural GIVEN that interleaving adds no per-session overhead,
    so the load-bearing assertions are the non-interference guards: every
    session must consume the same virtual time it would alone (this is what
    catches a scheduler that makes sessions burn extra syscall rounds, e.g.
    re-polling a drained accept queue), and the scheduler may not take more
    turns than the longest session has rounds.
    """
    results = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    emit("Engine throughput: requests/sec vs. session count", format_scaling(results))

    for sessions, measurement in results.items():
        assert measurement.completed_ok, (
            f"{sessions} sessions: {measurement.requests_completed}/"
            f"{measurement.requests_sent} completed, {measurement.alarms} alarms"
        )
        assert measurement.status_counts == {200: measurement.requests_sent}

    # Non-interference: each of the 8 interleaved sessions costs exactly what
    # the lone session cost (identical shards, deterministic simulation).
    baseline_elapsed = results[1].engine_result.sessions[0].virtual_elapsed
    for entry in results[8].engine_result.sessions:
        assert entry.virtual_elapsed == baseline_elapsed, (
            entry.name, entry.virtual_elapsed, baseline_elapsed
        )
    # Scheduler efficiency: one turn per round of the longest session.
    longest = max(s.rounds for s in results[8].engine_result.sessions)
    assert results[8].engine_result.scheduler_turns <= longest + 1

    baseline = results[1].requests_per_kilotick()
    concurrent = results[8].requests_per_kilotick()
    assert concurrent >= 4.0 * baseline, (baseline, concurrent)

    write_results(
        "engine_throughput",
        {
            "config": {
                "system": SYSTEM.to_dict(),
                "requests_per_session": REQUESTS_PER_SESSION,
                "session_counts": list(SESSION_COUNTS),
            },
            "rows": [
                {
                    "sessions": sessions,
                    "requests_completed": measurement.requests_completed,
                    "alarms": measurement.alarms,
                    "requests_per_kilotick": round(measurement.requests_per_kilotick(), 3),
                    "speedup": round(measurement.speedup(), 3),
                }
                for sessions, measurement in results.items()
            ],
            "speedup_at_8_sessions": round(concurrent / baseline, 3),
        },
    )


def test_engine_keepalive_multiplexing(benchmark):
    """Keep-alive pipelining with a multiplexing server costs fewer syscalls
    per request than one-connection-per-request, at identical responses."""

    def run_pair():
        serial = drive_engine(
            _fleet(2, total_requests=24, name="serial-connections")
        )
        keepalive = drive_engine(
            _fleet(
                2,
                total_requests=24,
                requests_per_connection=4,
                multiplex=4,
                name="keepalive-multiplexed",
            )
        )
        return serial, keepalive

    serial, keepalive = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    emit(
        "Engine keep-alive multiplexing",
        f"serial:    {serial.requests_completed} requests in {serial.virtual_elapsed} ticks\n"
        f"keepalive: {keepalive.requests_completed} requests in {keepalive.virtual_elapsed} ticks",
    )
    assert serial.completed_ok and keepalive.completed_ok
    assert keepalive.status_counts == serial.status_counts
    # Accept/shutdown/close amortise over the pipeline, so virtual time drops.
    assert keepalive.virtual_elapsed < serial.virtual_elapsed
