"""Benchmark: regenerate the Figure 1 scenario (address-space partitioning)."""

from conftest import emit

from repro.analysis.experiments import figure1


def test_figure1_address_partitioning(benchmark):
    """Benign requests are served equivalently; absolute-address injection is detected."""
    result = benchmark(figure1.run)
    emit("Figure 1: Two-variant address partitioning", result.format())
    assert result.reproduces_figure
    assert result.equivalence.holds
    # The same attacks succeed (or at worst crash) against a single process.
    assert any(outcome.goal_reached for outcome in result.single_outcomes)
    # Under partitioning every injection is detected.
    assert all(outcome.detected for outcome in result.nvariant_outcomes)
