"""Benchmark: regenerate the Figure 2 scenario (data diversity in an N-variant system)."""

from conftest import emit

from repro.analysis.experiments import figure2


def test_figure2_data_diversity_pipeline(benchmark):
    """Trusted UIDs are reexpressed per variant, replicated injected data is detected."""
    result = benchmark(figure2.run)
    emit("Figure 2: N-variant systems with data diversity", result.format())
    assert result.reproduces_figure
    # Per-variant representations differ while decoded values agree.
    assert result.variant_passwd_uids[0] != result.variant_passwd_uids[1]
    assert result.benign_decoded[0] == result.benign_decoded[1]
    # An injected concrete value decodes differently and is detected.
    assert result.attack_decoded[0] != result.attack_decoded[1]
    assert result.attack_detected
