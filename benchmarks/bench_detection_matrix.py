"""Benchmark: the detection matrix (the paper's central security claims)."""

from conftest import emit

from repro.analysis.experiments import detection


def test_detection_matrix(benchmark):
    """Every in-guarantee attack is detected; the unprotected server is compromised."""
    result = benchmark.pedantic(
        detection.run, kwargs={"parallelism": 8}, rounds=1, iterations=1
    )
    emit("Detection matrix", result.format())
    claims = result.claim_results()
    assert all(claims.values()), claims
    assert result.all_claims_hold
