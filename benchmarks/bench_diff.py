#!/usr/bin/env python3
"""Cross-PR benchmark trajectory diffing: results/ vs the committed baseline.

Every benchmark run writes a machine-readable ``BENCH_<name>.json`` into
``benchmarks/results/`` (see :func:`conftest.write_results`);
``benchmarks/baseline/`` holds the committed snapshot those files are judged
against.  This tool pairs the two directories up and prints, per benchmark,
every *numeric* metric whose value moved -- absolute delta and percent --
plus non-numeric changes, new metrics and metrics that disappeared, so a
PR's performance story is a ``make bench && make bench-diff`` away instead
of living in terminal scrollback.

Exit status: 0 when every benchmark was compared (whether or not anything
changed), 2 when a directory is missing or holds no benchmark files.
Non-numeric metrics that change (a claim boolean regressing from true to
false, a matrix cell changing outcome), vanish, or are *born false* (a new
claim that fails from its first run) are listed under ``!`` markers;
``--fail-on-flip`` turns any such flip into exit status 1 for CI use.

Diffing is generic over the JSON payloads, so list elements are keyed by
position: inserting a matrix row or column mid-table shifts the cells
after it and reports them all as changed.  That is accurate (the payload
did change shape) but noisy; the workflow for an intentional shape change
is to refresh ``benchmarks/baseline/`` in the same commit, after which the
diff is clean again and only real regressions move.

Two noise controls keep the trajectory about the reproduction rather than
the host that happened to run it: metrics whose final dotted-path component
starts with ``wall_`` (wall-clock timings, host core counts, their derived
speedups) are excluded from the diff entirely, and ``--rtol`` suppresses
numeric deltas whose relative change is within the given tolerance.

Usage::

    python benchmarks/bench_diff.py
    python benchmarks/bench_diff.py --baseline benchmarks/baseline --results benchmarks/results
    python benchmarks/bench_diff.py --fail-on-flip --rtol 0.05
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Iterator

HERE = Path(__file__).resolve().parent

#: Default locations, relative to benchmarks/.
DEFAULT_RESULTS = HERE / "results"
DEFAULT_BASELINE = HERE / "baseline"

def flatten(payload: Any, prefix: str = "") -> Iterator[tuple[str, Any]]:
    """Yield ``(dotted.path, scalar)`` pairs for every leaf of *payload*.

    Lists use numeric path components; only scalars (numbers, bools,
    strings, None) terminate a path, so the diff vocabulary is stable
    however deeply a benchmark nests its payload.
    """
    if isinstance(payload, dict):
        for key in sorted(payload):
            yield from flatten(payload[key], f"{prefix}{key}.")
    elif isinstance(payload, list):
        for index, item in enumerate(payload):
            yield from flatten(item, f"{prefix}{index}.")
    else:
        yield prefix.rstrip("."), payload


def load_metrics(path: Path) -> dict[str, Any]:
    """One benchmark file as a flat ``{dotted.path: scalar}`` mapping."""
    return dict(flatten(json.loads(path.read_text())))


def is_number(value: Any) -> bool:
    """True for real numerics (bools are category flips, not deltas)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def is_wall_clock(metric: str) -> bool:
    """True for host-noise metrics excluded from the tracked trajectory.

    By convention benchmarks prefix every wall-clock-derived key with
    ``wall_`` (``wall_seconds``, ``wall_speedup``, ``wall_host_cpus``);
    their values depend on the machine and its load, so diffing them across
    PRs reports weather, not regressions.
    """
    leaf = metric.rsplit(".", 1)[-1]
    return leaf.startswith("wall_")


def is_claim(metric: str) -> bool:
    """True for the schema-stable claim booleans of an experiment report.

    Only these are judged at birth: other False leaves (e.g. a system
    spec's ``transformed: false`` inside a config section) are ordinary
    data, not failed guarantees.
    """
    return metric == "ok" or metric.startswith("claims.") or ".claims." in metric


def diff_benchmark(
    baseline: dict[str, Any], current: dict[str, Any], *, rtol: float = 0.0
) -> tuple[list[str], int]:
    """Render one benchmark's changed metrics; returns (lines, flips).

    *rtol* suppresses numeric deltas whose relative change (against the
    baseline value; absolute change when the baseline is zero) stays within
    the tolerance -- measurement jitter, not trajectory.
    """
    lines: list[str] = []
    flips = 0
    for metric in sorted(set(baseline) | set(current)):
        if is_wall_clock(metric):
            continue
        before = baseline.get(metric)
        after = current.get(metric)
        if metric not in baseline:
            # A brand-new claim that is already false never had a "true ->
            # false" transition to catch, so flag it at birth.
            if after is False and is_claim(metric):
                flips += 1
                lines.append(f"  ! {metric} = False (new metric, born failing)")
            else:
                lines.append(f"  + {metric} = {after!r} (new metric)")
            continue
        if metric not in current:
            # A vanished non-numeric metric (a claim or matrix cell dropping
            # out of the tracked trajectory) counts as a flip: silently losing
            # a guarantee must trip --fail-on-flip just like regressing one.
            if not is_number(before):
                flips += 1
                lines.append(f"  ! {metric} (was {before!r}, gone)")
            else:
                lines.append(f"  - {metric} (was {before!r}, gone)")
            continue
        if before == after:
            continue
        if is_number(before) and is_number(after):
            delta = after - before
            if before:
                if abs(delta / before) <= rtol:
                    continue
                lines.append(
                    f"    {metric}: {before:g} -> {after:g} "
                    f"({delta:+g}, {delta / before * 100.0:+.1f}%)"
                )
            else:
                if abs(delta) <= rtol:
                    continue
                lines.append(f"    {metric}: {before:g} -> {after:g} ({delta:+g})")
            continue
        flips += 1
        lines.append(f"  ! {metric}: {before!r} -> {after!r}")
    return lines, flips


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", type=Path, default=DEFAULT_RESULTS)
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--fail-on-flip",
        action="store_true",
        help="exit 1 when any non-numeric metric (e.g. a claim boolean) changed",
    )
    parser.add_argument(
        "--rtol",
        type=float,
        default=0.0,
        help="suppress numeric deltas within this relative tolerance "
        "(e.g. 0.05 ignores moves under 5%%)",
    )
    arguments = parser.parse_args(argv)
    if arguments.rtol < 0:
        parser.error("--rtol must be >= 0")

    for label, directory in (("results", arguments.results), ("baseline", arguments.baseline)):
        if not directory.is_dir():
            print(f"bench-diff: {label} directory {directory} does not exist", file=sys.stderr)
            return 2

    result_files = {path.name: path for path in sorted(arguments.results.glob("BENCH_*.json"))}
    baseline_files = {path.name: path for path in sorted(arguments.baseline.glob("BENCH_*.json"))}
    if not result_files and not baseline_files:
        print("bench-diff: no BENCH_*.json files found on either side", file=sys.stderr)
        return 2

    total_flips = 0
    changed_benchmarks = 0
    for name in sorted(set(result_files) | set(baseline_files)):
        title = name[len("BENCH_"):-len(".json")]
        if name not in baseline_files:
            metrics = load_metrics(result_files[name])
            print(
                f"{title}: missing baseline file {arguments.baseline / name} "
                f"({len(metrics)} new metrics untracked); run `make bench-smoke` "
                f"and commit benchmarks/baseline/{name} to start its trajectory"
            )
            for metric in sorted(m for m, v in metrics.items() if v is False and is_claim(m)):
                total_flips += 1
                print(f"  ! {metric} = False (new benchmark, born failing)")
            continue
        if name not in result_files:
            print(f"{title}: present in baseline only (run `make bench` to regenerate)")
            continue
        lines, flips = diff_benchmark(
            load_metrics(baseline_files[name]),
            load_metrics(result_files[name]),
            rtol=arguments.rtol,
        )
        total_flips += flips
        if lines:
            changed_benchmarks += 1
            print(f"{title}:")
            print("\n".join(lines))
        else:
            print(f"{title}: unchanged")
    print(
        f"\nbench-diff: {changed_benchmarks} benchmark(s) moved, "
        f"{total_flips} non-numeric flip(s)"
    )
    if arguments.fail_on_flip and total_flips:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
