"""Benchmark: regenerate Table 1 (reexpression functions and their properties)."""

from conftest import emit

from repro.analysis.experiments import table1


def test_table1_reexpression_functions(benchmark):
    """All four variations satisfy the inverse and disjointedness properties."""
    result = benchmark(table1.run)
    emit("Table 1: Reexpression Functions", result.format())
    assert result.all_hold
    assert len(result.rows) == 4
    uid_row = next(row for row in result.rows if row.target_type == "uid")
    assert "0x7FFFFFFF" in uid_row.reexpression.upper() or "7FFFFFFF" in uid_row.reexpression
