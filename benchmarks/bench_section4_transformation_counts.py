"""Benchmark: regenerate the Section 4 transformation-effort accounting."""

from conftest import emit

from repro.analysis.experiments import section4
from repro.transform.report import ChangeCategory


def test_section4_transformation_counts(benchmark):
    """The automatic transformer reproduces the paper's change categories."""
    result = benchmark(section4.run)
    emit("Section 4: Source transformation effort", result.format())
    report = result.report
    # Every category the paper tabulates is exercised by the mini-httpd source.
    for category in (
        ChangeCategory.CONSTANT,
        ChangeCategory.UID_VALUE,
        ChangeCategory.COMPARISON,
        ChangeCategory.COND_CHK,
    ):
        assert report.count(category) > 0, category
    # The transformation is substantial (tens of changes), fully automatic.
    assert report.total_paper_categories >= 40
    # The transformed source really differs and carries the variant constants.
    assert "cc_eq" in result.transformed_source
    assert "uid_value" in result.transformed_source
    assert "cond_chk" in result.transformed_source
    assert "0x7fffffff" in result.transformed_source.lower()
