"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper; the formatted
output is printed (visible with ``pytest benchmarks/ --benchmark-only -s``)
and the paper's qualitative claims are asserted so a regression in the
reproduction fails the harness rather than silently producing a different
table.  Every benchmark also persists a machine-readable result --
``benchmarks/results/BENCH_<name>.json`` -- so the performance trajectory is
diffable across PRs instead of living only in terminal scrollback.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

#: Where the machine-readable benchmark results land (committed, one file per
#: benchmark, overwritten on every run).
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def emit(title: str, text: str) -> None:
    """Print a formatted experiment report under a clear banner."""
    banner = "=" * len(title)
    print(f"\n{banner}\n{title}\n{banner}\n{text}\n")


def write_results(name: str, payload: Mapping[str, Any]) -> Path:
    """Write one benchmark's machine-readable result as ``BENCH_<name>.json``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(dict(payload), indent=2, sort_keys=True) + "\n")
    return path
