"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper; the formatted
output is printed (visible with ``pytest benchmarks/ --benchmark-only -s``)
and the paper's qualitative claims are asserted so a regression in the
reproduction fails the harness rather than silently producing a different
table.
"""

from __future__ import annotations


def emit(title: str, text: str) -> None:
    """Print a formatted experiment report under a clear banner."""
    banner = "=" * len(title)
    print(f"\n{banner}\n{title}\n{banner}\n{text}\n")
