"""Benchmark: regenerate Table 3 (throughput and latency of the four configurations)."""

from conftest import emit

from repro.analysis.experiments import table3


def test_table3_performance(benchmark):
    """The shape of Table 3 holds: cheap transformation, ~halved saturated
    throughput for two variants, small incremental UID-variation cost."""
    result = benchmark(table3.run)
    emit("Table 3: Performance Results", result.format())
    shape = result.shape_holds()
    assert all(shape.values()), shape

    # Every configuration must have served the whole workload without alarms.
    for configuration in result.configurations:
        assert configuration.measurement.completed_ok, configuration.key


def test_table3_per_configuration_overheads(benchmark):
    """Quantitative overhead directions match the paper's Table 3."""
    result = benchmark.pedantic(table3.run, kwargs={"requests": 30}, rounds=1, iterations=1)
    # Unsaturated: redundant execution costs something, but far less than 2x.
    unsat_drop = result.overhead_vs_baseline("3-2variant-address", saturated=False)
    assert -30.0 < unsat_drop < -1.0
    # Saturated: computation is duplicated, so throughput roughly halves.
    sat_drop = result.overhead_vs_baseline("3-2variant-address", saturated=True)
    assert -65.0 < sat_drop < -40.0
    # The UID variation's additional cost over the 2-variant baseline is small.
    assert -10.0 < result.uid_overhead_vs_2variant(saturated=True) <= 0.0
    assert -10.0 < result.uid_overhead_vs_2variant(saturated=False) <= 0.0
