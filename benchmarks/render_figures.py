"""Render committed BENCH_*.json trajectories as markdown figures.

The benchmark JSON files under ``benchmarks/results/`` are the repo's
performance record, but a reviewer should not have to eyeball nested JSON
to see the N-scaling cost curve or the overload shed/latency trade-off.
This tool renders the two trajectory-shaped benchmarks -- ``nscaling`` and
``loadtest`` -- as markdown tables with ASCII bar charts, committed under
``benchmarks/figures/``.

Usage::

    python benchmarks/render_figures.py          # (re)write the figures
    python benchmarks/render_figures.py --check  # fail if figures are stale

``--check`` is the CI hook: it renders in memory and diffs against the
committed files, so a benchmark change that forgets to refresh the figures
fails loudly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
RESULTS_DIR = BENCH_DIR / "results"
FIGURES_DIR = BENCH_DIR / "figures"

#: Width of the ASCII bars, in characters, at the largest value.
BAR_WIDTH = 32


def _load(name: str) -> dict:
    path = RESULTS_DIR / f"BENCH_{name}.json"
    try:
        return json.loads(path.read_text())
    except OSError as exc:
        raise SystemExit(f"render_figures: cannot read {path}: {exc}") from exc


def _table(section: dict) -> list[dict]:
    headers = section["headers"]
    return [dict(zip(headers, row)) for row in section["rows"]]


def _bar(value: float, peak: float) -> str:
    if peak <= 0:
        return ""
    filled = max(1, round(BAR_WIDTH * value / peak)) if value > 0 else 0
    return "#" * filled


def _markdown_table(headers: list[str], rows: list[list[str]]) -> list[str]:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    lines.extend("| " + " | ".join(str(cell) for cell in row) + " |" for row in rows)
    return lines


def render_nscaling() -> str:
    """The N-scaling cost curves: lockstep syscalls and modeled throughput."""
    data = _load("nscaling")
    table = next(s for s in data["sections"] if s.get("kind") == "table")
    rows = _table(table)
    syscall_peak = max(float(r["syscalls/request (uid)"]) for r in rows)
    kbps_peak = max(float(r["saturated kbps (model)"]) for r in rows)
    lines = [
        "# N-scaling trajectory",
        "",
        f"Rendered from `benchmarks/results/BENCH_nscaling.json` ({data['title']}).",
        "",
        "## Lockstep cost: syscalls per request vs variant count",
        "",
    ]
    lines += _markdown_table(
        ["N", "syscalls/request", "", "guarantees"],
        [
            [
                r["N"],
                r["syscalls/request (uid)"],
                f"`{_bar(float(r['syscalls/request (uid)']), syscall_peak)}`",
                f"uid={r['UID guarantee']}, address={r['address guarantee']}",
            ]
            for r in rows
        ],
    )
    lines += [
        "",
        "## Modeled saturated throughput vs variant count",
        "",
    ]
    lines += _markdown_table(
        ["N", "saturated kbps (model)", ""],
        [
            [
                r["N"],
                r["saturated kbps (model)"],
                f"`{_bar(float(r['saturated kbps (model)']), kbps_peak)}`",
            ]
            for r in rows
        ],
    )
    lines.append("")
    return "\n".join(lines)


def render_loadtest() -> str:
    """The overload trade-off: shed fraction and p99 sojourn vs offered load."""
    data = _load("loadtest")
    table = next(s for s in data["sections"] if s.get("kind") == "table")
    rows = _table(table)
    keyvalues = next(s for s in data["sections"] if s.get("kind") == "key-values")
    configurations = sorted({r["configuration"] for r in rows})
    policies = []
    for r in rows:
        if r["admission"] not in policies:
            policies.append(r["admission"])
    loads = []
    for r in rows:
        if r["load"] not in loads:
            loads.append(r["load"])

    def cell(configuration: str, policy: str, load: str) -> dict:
        return next(
            r
            for r in rows
            if r["configuration"] == configuration
            and r["admission"] == policy
            and r["load"] == load
        )

    lines = [
        "# Open-loop load trajectory",
        "",
        f"Rendered from `benchmarks/results/BENCH_loadtest.json` ({data['title']}).",
        "",
    ]
    for configuration in configurations:
        p99_peak = max(
            float(cell(configuration, policy, load)["p99"])
            for policy in policies
            for load in loads
            if cell(configuration, policy, load)["p99"] != "-"
        )
        lines += [f"## {configuration}: shed fraction vs offered load", ""]
        lines += _markdown_table(
            ["admission", *loads],
            [
                [
                    policy,
                    *(
                        cell(configuration, policy, load)["shed/offered"]
                        for load in loads
                    ),
                ]
                for policy in policies
            ],
        )
        lines += ["", f"## {configuration}: admitted p99 sojourn (ticks) vs offered load", ""]
        p99_rows = []
        for policy in policies:
            for load in loads:
                entry = cell(configuration, policy, load)
                if entry["p99"] == "-":
                    p99_rows.append([policy, load, "-", "`-`"])
                else:
                    p99_rows.append(
                        [
                            policy,
                            load,
                            entry["p99"],
                            f"`{_bar(float(entry['p99']), p99_peak)}`",
                        ]
                    )
        lines += _markdown_table(["admission", "load", "p99", ""], p99_rows)
        lines.append("")
    lines += ["## Calibration and migration", ""]
    lines += _markdown_table(
        ["key", "value"], [[key, value] for key, value in keyvalues["pairs"]]
    )
    lines.append("")
    return "\n".join(lines)


FIGURES = {
    "nscaling.md": render_nscaling,
    "loadtest.md": render_loadtest,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the committed figures match the results files (no writes)",
    )
    arguments = parser.parse_args(argv)
    stale = []
    FIGURES_DIR.mkdir(parents=True, exist_ok=True)
    for filename, render in FIGURES.items():
        content = render()
        path = FIGURES_DIR / filename
        if arguments.check:
            if not path.exists() or path.read_text() != content:
                stale.append(filename)
        else:
            path.write_text(content)
            print(f"wrote {path.relative_to(BENCH_DIR.parent)}")
    if stale:
        print(
            "render_figures: stale figures: "
            + ", ".join(stale)
            + "; run `python benchmarks/render_figures.py`",
            file=sys.stderr,
        )
        return 1
    if arguments.check:
        print("render_figures: figures match the committed benchmark results")
    return 0


if __name__ == "__main__":
    sys.exit(main())
