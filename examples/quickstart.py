#!/usr/bin/env python3
"""Quickstart: data diversity in an N-variant system, in three steps.

Step 1 shows the idea at the level of the paper's interpreters model
(Figure 2): two variants carry different concrete representations of the same
trusted UID; an attacker who injects a concrete value through the shared
input channel necessarily feeds both variants the same bytes, which decode to
different UIDs and trip the monitor.

Step 2 runs the same idea through the full simulated stack: a tiny program,
the lockstep N-variant engine, the kernel wrappers and the UID variation.

Step 3 launches the mini Apache case study under the 2-variant UID
configuration, serves a benign request, and then shows a real UID-corruption
attack (a header overflow) being detected.
"""

from repro import UID_DIVERSITY_SPEC, build_system
from repro.apps.clients.webbench import WebBenchWorkload, drive_nvariant
from repro.apps.httpd.server import make_httpd_factory
from repro.attacks.payloads import benign_request, uid_overwrite_payload
from repro.core import (
    DataDiversityPipeline,
    TargetInterpreter,
    UIDVariation,
    nvexec,
    vulnerable_app_interpreter,
)
from repro.kernel.host import HTTP_PORT, build_standard_host


def step1_pipeline_model() -> None:
    """The interpreters model: reexpression + disjoint inverses = detection."""
    print("=" * 72)
    print("Step 1: the data-diversity pipeline (Figure 2)")
    print("=" * 72)
    variation = UIDVariation()
    pipeline = DataDiversityPipeline(
        reexpressions=variation.reexpressions(),
        app=vulnerable_app_interpreter(),
        target=TargetInterpreter(name="setuid", apply=lambda uid: f"setuid({uid})"),
    )

    benign = pipeline.process(b"GET /index.html", trusted_value=33)
    print(f"benign request : concrete per-variant values {benign.concrete_values} "
          f"-> decoded {benign.decoded_values} -> {benign.target_result}")

    attack = pipeline.process(b"EXPLOIT: 0", trusted_value=33)
    print(f"attack request : both variants receive concrete 0 "
          f"-> decoded {attack.decoded_values} -> ALARM: {attack.alarm.description}")
    print()


def step2_lockstep_engine() -> None:
    """The same property through the lockstep engine and kernel wrappers."""
    print("=" * 72)
    print("Step 2: the lockstep N-variant engine")
    print("=" * 72)

    def benign_factory(context):
        def program():
            libc, codec = context.libc, context.uid_codec
            # Drop privileges to www-data using the variant's own constant.
            yield from libc.setuid(codec.constant(33))
            euid = (yield from libc.geteuid()).value
            yield from libc.cc_eq(euid, codec.constant(33))
            yield from libc.exit(0)

        return program()

    result = nvexec(build_standard_host(), benign_factory, [UIDVariation()])
    print(f"benign program : completed normally = {result.completed_normally}, "
          f"alarms = {len(result.alarms)}")

    def attack_factory(context):
        def program():
            # The attacker injects the concrete value 0 (root) -- identical in
            # both variants because inputs are replicated.
            yield from context.libc.setuid(0)
            yield from context.libc.exit(0)

        return program()

    result = nvexec(build_standard_host(), attack_factory, [UIDVariation()])
    print(f"attack program : detected = {result.attack_detected}")
    print(f"                 {result.first_alarm().describe()}")
    print()


def step3_mini_apache() -> None:
    """The Apache case study: benign traffic, then a UID-corruption attack."""
    print("=" * 72)
    print("Step 3: the mini Apache case study (2-variant UID configuration)")
    print("=" * 72)

    measurement, result = drive_nvariant(
        WebBenchWorkload(total_requests=6), UID_DIVERSITY_SPEC.with_name("quickstart")
    )
    print(f"benign workload: {measurement.requests_completed} requests served, "
          f"statuses {measurement.status_counts}, alarms {measurement.alarms}")

    kernel = build_standard_host()
    kernel.client_connect(HTTP_PORT, benign_request())
    kernel.client_connect(HTTP_PORT, uid_overwrite_payload(0), client="attacker")
    system = build_system(
        UID_DIVERSITY_SPEC,
        kernel,
        make_httpd_factory(transformed=True, max_requests=2),
        name="httpd",
    )
    attack_result = system.run()
    print(f"attack request : detected = {attack_result.attack_detected}")
    print(f"                 {attack_result.first_alarm().describe()}")


def main() -> None:
    step1_pipeline_model()
    step2_lockstep_engine()
    step3_mini_apache()


if __name__ == "__main__":
    main()
