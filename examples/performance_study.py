#!/usr/bin/env python3
"""Table 3 performance study, with a workload-size sweep.

Regenerates the Table 3 comparison (unmodified / transformed / 2-variant
address / 2-variant UID under unsaturated and saturated load) and then sweeps
the workload size to show that the overhead ratios are stable -- the property
that makes the paper's conclusion ("additional variations may be performed at
relatively low cost") robust rather than an artefact of one measurement
point.
"""

from repro.analysis.experiments import table3
from repro.api.experiments import experiments


def main() -> None:
    report = experiments.run("table3", {"requests": 40})
    result = report.result
    print(report.format())
    print()

    print("Workload-size sweep (saturated throughput drop vs configuration 1):")
    print(f"{'requests':>10s}{'2-variant address':>22s}{'2-variant UID vs addr':>24s}")
    for requests in (10, 20, 40, 80):
        sweep = table3.run(requests=requests)
        address_drop = sweep.overhead_vs_baseline("3-2variant-address", saturated=True)
        uid_extra = sweep.uid_overhead_vs_2variant(saturated=True)
        print(f"{requests:>10d}{address_drop:>21.1f}%{uid_extra:>23.1f}%")

    print()
    print("Paper reference points: config 3 = -56% saturated throughput,")
    print("config 4 = -4.5% relative to config 3 (Table 3 of the paper).")


if __name__ == "__main__":
    main()
