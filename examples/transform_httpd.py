#!/usr/bin/env python3
"""Automatic UID-variation source transformation (Sections 3.3 and 4).

Parses the mini-httpd's UID-relevant mini-C source, runs the automatic
transformer with the variant-1 reexpression function (XOR 0x7FFFFFFF), prints
a unified-style before/after excerpt, and reports the change counts in the
same categories as the paper's Section 4 accounting.
"""

import difflib

from repro.apps.httpd.csource import HTTPD_UID_SOURCE
from repro.core.variations.uid import UIDVariation
from repro.transform.parser import parse_source
from repro.transform.printer import print_unit
from repro.transform.uid_transform import transform_source


def main() -> None:
    variation = UIDVariation()
    original_unit = parse_source(HTTPD_UID_SOURCE)
    transformed_unit, report = transform_source(
        HTTPD_UID_SOURCE, lambda uid: variation.encode(1, uid)
    )

    original = print_unit(original_unit).splitlines(keepends=True)
    transformed = print_unit(transformed_unit).splitlines(keepends=True)
    diff = difflib.unified_diff(
        original, transformed, fromfile="httpd_uid.c (variant 0)", tofile="httpd_uid.c (variant 1)"
    )

    print("Source diff between variant 0 and the automatically generated variant 1:")
    print("".join(diff))

    print(report.describe())
    print()
    print(f"{'category':36s}{'mini-httpd':>12s}{'Apache (paper)':>16s}")
    for category, ours, paper in report.comparison_rows():
        print(f"{category:36s}{ours:>12d}{paper:>16d}")


if __name__ == "__main__":
    main()
