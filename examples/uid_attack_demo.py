#!/usr/bin/env python3
"""UID data-corruption attacks against three deployments of the mini-httpd.

Reproduces the narrative of Section 3: the same attack payloads -- HTTP
requests whose oversized ``X-Annotation`` header overflows into the server's
cached ``uid_t`` fields -- are sent to:

1. an ordinary single-process server (the attack silently succeeds: the
   privilege drop is skipped and the traversal path leaks ``/etc/shadow``);
2. a 2-variant system with address-space partitioning only (the paper's
   earlier variation, which does not protect non-control data);
3. the 2-variant UID data-diversity system (every complete or partial UID
   overwrite is detected at its first use).

Run with ``python examples/uid_attack_demo.py``.
"""

from repro import (
    ADDRESS_PARTITIONING_SPEC,
    SINGLE_PROCESS_SPEC,
    UID_DIVERSITY_SPEC,
    run_campaign,
)
from repro.attacks.uid_attacks import standard_uid_attacks


def main() -> None:
    specs = (SINGLE_PROCESS_SPEC, ADDRESS_PARTITIONING_SPEC, UID_DIVERSITY_SPEC)
    attacks = [attack for attack in standard_uid_attacks() if attack.remote]

    print("Running", len(attacks), "UID-corruption attacks against", len(specs),
          "configurations...\n")
    report = run_campaign(specs, attacks)
    print(report.describe())

    print("\nDetection rates:")
    for spec in specs:
        rate = report.detection_rate(spec.name)
        print(f"  {spec.name:20s} {rate * 100:5.1f}% of attacks detected")

    failures = report.security_failures()
    uid_failures = [o for o in failures if o.configuration == "2-variant-uid"]
    print(
        "\nUndetected compromises of the 2-variant UID system:",
        len(uid_failures),
        "(the paper's guarantee: zero for complete/partial-value overwrites)",
    )


if __name__ == "__main__":
    main()
