#!/usr/bin/env python3
"""Figure 1 walkthrough: address-space partitioning and pointer injection.

Shows the complementary variation from the original N-variant systems work:
the two variants occupy disjoint halves of the address space, so an injected
absolute pointer (delivered here by overflowing the mini-httpd's header
buffer into its banner pointer) can be valid in at most one variant.  The
sibling variant's segmentation fault is the detection event.

Also demonstrates why this variation does *not* stop the UID attack (the
corrupted UID is an ordinary data value, valid in both address spaces), which
is the gap the paper's data diversity fills.
"""

from repro import ADDRESS_ORBIT_3_SPEC, ADDRESS_PARTITIONING_SPEC
from repro.attacks.memory_attacks import (
    run_address_attack_nvariant,
    run_address_attack_single,
    standard_address_attacks,
)
from repro.attacks.uid_attacks import run_remote_attack_nvariant, standard_uid_attacks
from repro.memory.address_space import AddressSpace
from repro.memory.memory_model import MemoryRegion
from repro.memory.partition import HighBitScheme, OrbitScheme


def show_partitions() -> None:
    """Print how the same nominal region lands in each variant's partition."""
    print("Address layout of the same nominal region under each scheme:")
    for scheme in (HighBitScheme(), OrbitScheme(3)):
        print(f"  {scheme.describe()}:")
        for index in range(scheme.num_partitions):
            space = AddressSpace(scheme=scheme, index=index)
            region = space.map_region(MemoryRegion("server-state", 0x00400000, 256))
            print(f"    variant {index}: server-state mapped at 0x{region.base:08X}")
    print()


def main() -> None:
    show_partitions()

    print("Absolute-address injection attacks:")
    for attack in standard_address_attacks():
        single = run_address_attack_single(attack)
        redundant = run_address_attack_nvariant(attack)
        orbit = run_address_attack_nvariant(attack, ADDRESS_ORBIT_3_SPEC)
        print(f"  {attack.name}")
        print(f"    single process        : {single.kind.value}")
        print(f"    2-variant partitioned : {redundant.kind.value} -- {redundant.detail}")
        print(f"    3-variant orbit       : {orbit.kind.value} -- {orbit.detail}")
    print()

    print("The UID-corruption attack against address partitioning alone:")
    uid_attack = next(a for a in standard_uid_attacks() if a.name == "full-word-root-overwrite")
    outcome = run_remote_attack_nvariant(uid_attack, ADDRESS_PARTITIONING_SPEC)
    print(f"  {uid_attack.name}: {outcome.kind.value}")
    print("  (address partitioning does not defend non-control data; the UID")
    print("   variation of the paper exists exactly for this attack class)")


if __name__ == "__main__":
    main()
